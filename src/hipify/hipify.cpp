#include "src/hipify/hipify.h"

#include <cctype>
#include <fstream>
#include <sstream>

#include "src/base/error.h"
#include "src/base/strings.h"

namespace qhip::hipify {

namespace {

// Identifier-level API mapping (subset of hipify-perl's CUDA2HIP tables
// covering the runtime API, types, memcpy kinds, events, streams, device
// intrinsics and the math libraries qsim links).
const std::map<std::string, std::string>& map_instance() {
  static const std::map<std::string, std::string> m = {
      // Memory management
      {"cudaMalloc", "hipMalloc"},
      {"cudaMallocHost", "hipHostMalloc"},
      {"cudaMallocManaged", "hipMallocManaged"},
      {"cudaFree", "hipFree"},
      {"cudaFreeHost", "hipHostFree"},
      {"cudaMemcpy", "hipMemcpy"},
      {"cudaMemcpyAsync", "hipMemcpyAsync"},
      {"cudaMemcpy2D", "hipMemcpy2D"},
      {"cudaMemset", "hipMemset"},
      {"cudaMemsetAsync", "hipMemsetAsync"},
      {"cudaMemGetInfo", "hipMemGetInfo"},
      {"cudaMemcpyHostToDevice", "hipMemcpyHostToDevice"},
      {"cudaMemcpyDeviceToHost", "hipMemcpyDeviceToHost"},
      {"cudaMemcpyDeviceToDevice", "hipMemcpyDeviceToDevice"},
      {"cudaMemcpyHostToHost", "hipMemcpyHostToHost"},
      {"cudaMemcpyDefault", "hipMemcpyDefault"},
      {"cudaMemcpyKind", "hipMemcpyKind"},
      // Error handling
      {"cudaError_t", "hipError_t"},
      {"cudaError", "hipError_t"},
      {"cudaSuccess", "hipSuccess"},
      {"cudaGetLastError", "hipGetLastError"},
      {"cudaPeekAtLastError", "hipPeekAtLastError"},
      {"cudaGetErrorString", "hipGetErrorString"},
      {"cudaGetErrorName", "hipGetErrorName"},
      // Device management
      {"cudaSetDevice", "hipSetDevice"},
      {"cudaGetDevice", "hipGetDevice"},
      {"cudaGetDeviceCount", "hipGetDeviceCount"},
      {"cudaDeviceSynchronize", "hipDeviceSynchronize"},
      {"cudaDeviceReset", "hipDeviceReset"},
      {"cudaDeviceProp", "hipDeviceProp_t"},
      {"cudaGetDeviceProperties", "hipGetDeviceProperties"},
      {"cudaDeviceGetAttribute", "hipDeviceGetAttribute"},
      {"cudaFuncSetCacheConfig", "hipFuncSetCacheConfig"},
      {"cudaFuncCachePreferShared", "hipFuncCachePreferShared"},
      {"cudaFuncCachePreferL1", "hipFuncCachePreferL1"},
      // Streams
      {"cudaStream_t", "hipStream_t"},
      {"cudaStreamCreate", "hipStreamCreate"},
      {"cudaStreamCreateWithFlags", "hipStreamCreateWithFlags"},
      {"cudaStreamDestroy", "hipStreamDestroy"},
      {"cudaStreamSynchronize", "hipStreamSynchronize"},
      {"cudaStreamWaitEvent", "hipStreamWaitEvent"},
      {"cudaStreamNonBlocking", "hipStreamNonBlocking"},
      {"cudaStreamDefault", "hipStreamDefault"},
      // Events
      {"cudaEvent_t", "hipEvent_t"},
      {"cudaEventCreate", "hipEventCreate"},
      {"cudaEventDestroy", "hipEventDestroy"},
      {"cudaEventRecord", "hipEventRecord"},
      {"cudaEventSynchronize", "hipEventSynchronize"},
      {"cudaEventElapsedTime", "hipEventElapsedTime"},
      // Symbols / pitched / legacy
      {"cudaMemcpyToSymbol", "hipMemcpyToSymbol"},
      {"cudaMemcpyFromSymbol", "hipMemcpyFromSymbol"},
      {"cudaHostAlloc", "hipHostMalloc"},
      {"cudaHostAllocDefault", "hipHostMallocDefault"},
      {"cudaMallocPitch", "hipMallocPitch"},
      {"cudaThreadSynchronize", "hipDeviceSynchronize"},
      {"cudaFuncAttributes", "hipFuncAttributes"},
      {"cudaFuncGetAttributes", "hipFuncGetAttributes"},
      {"cudaDeviceGetLimit", "hipDeviceGetLimit"},
      {"cudaLimitMallocHeapSize", "hipLimitMallocHeapSize"},
      {"cudaEventCreateWithFlags", "hipEventCreateWithFlags"},
      {"cudaEventDisableTiming", "hipEventDisableTiming"},
      {"cudaEventQuery", "hipEventQuery"},
      {"cudaErrorNotReady", "hipErrorNotReady"},
      // cuFFT -> hipFFT
      {"cufftHandle", "hipfftHandle"},
      {"cufftPlan1d", "hipfftPlan1d"},
      {"cufftExecC2C", "hipfftExecC2C"},
      {"cufftDestroy", "hipfftDestroy"},
      {"CUFFT_FORWARD", "HIPFFT_FORWARD"},
      // Host registration
      {"cudaHostRegister", "hipHostRegister"},
      {"cudaHostUnregister", "hipHostUnregister"},
      {"cudaHostRegisterDefault", "hipHostRegisterDefault"},
      // Occupancy
      {"cudaOccupancyMaxActiveBlocksPerMultiprocessor",
       "hipOccupancyMaxActiveBlocksPerMultiprocessor"},
      // Complex types
      {"cuComplex", "hipComplex"},
      {"cuFloatComplex", "hipFloatComplex"},
      {"cuDoubleComplex", "hipDoubleComplex"},
      {"make_cuComplex", "make_hipComplex"},
      {"make_cuFloatComplex", "make_hipFloatComplex"},
      {"make_cuDoubleComplex", "make_hipDoubleComplex"},
      {"cuCrealf", "hipCrealf"},
      {"cuCimagf", "hipCimagf"},
      {"cuCreal", "hipCreal"},
      {"cuCimag", "hipCimag"},
      {"cuCmulf", "hipCmulf"},
      {"cuCaddf", "hipCaddf"},
      // cuBLAS -> hipBLAS
      {"cublasHandle_t", "hipblasHandle_t"},
      {"cublasCreate", "hipblasCreate"},
      {"cublasDestroy", "hipblasDestroy"},
      {"cublasStatus_t", "hipblasStatus_t"},
      {"CUBLAS_STATUS_SUCCESS", "HIPBLAS_STATUS_SUCCESS"},
      {"cublasCgemm", "hipblasCgemm"},
      {"cublasZgemm", "hipblasZgemm"},
      // cuRAND -> hipRAND
      {"curandGenerator_t", "hiprandGenerator_t"},
      {"curandCreateGenerator", "hiprandCreateGenerator"},
      {"curandGenerateUniform", "hiprandGenerateUniform"},
      {"curandDestroyGenerator", "hiprandDestroyGenerator"},
      {"CURAND_RNG_PSEUDO_PHILOX4_32_10", "HIPRAND_RNG_PSEUDO_PHILOX4_32_10"},
      // Intrinsics without signature changes
      {"__threadfence", "__threadfence"},
      {"__syncwarp", "__builtin_amdgcn_wave_barrier"},
  };
  return m;
}

// _sync collectives: (new name, drop-first-arg).
struct SyncRule {
  const char* hip_name;
  bool drop_first_arg;
};

const std::map<std::string, SyncRule>& sync_rules() {
  static const std::map<std::string, SyncRule> m = {
      {"__shfl_sync", {"__shfl", true}},
      {"__shfl_up_sync", {"__shfl_up", true}},
      {"__shfl_down_sync", {"__shfl_down", true}},
      {"__shfl_xor_sync", {"__shfl_xor", true}},
      {"__ballot_sync", {"__ballot", true}},
      {"__any_sync", {"__any", true}},
      {"__all_sync", {"__all", true}},
      {"__activemask", {"__ballot(1)", false}},
  };
  return m;
}

// Include-line substring rewrites.
const std::vector<std::pair<std::string, std::string>>& include_map() {
  static const std::vector<std::pair<std::string, std::string>> v = {
      {"<cuda_runtime.h>", "<hip/hip_runtime.h>"},
      {"<cuda_runtime_api.h>", "<hip/hip_runtime_api.h>"},
      {"<cuda.h>", "<hip/hip_runtime.h>"},
      {"<cuComplex.h>", "<hip/hip_complex.h>"},
      {"<cuda_fp16.h>", "<hip/hip_fp16.h>"},
      {"<cublas_v2.h>", "<hipblas.h>"},
      {"<curand.h>", "<hiprand.h>"},
      {"<cooperative_groups.h>", "<hip/hip_cooperative_groups.h>"},
  };
  return v;
}

bool ident_start(char c) { return std::isalpha(static_cast<unsigned char>(c)) || c == '_'; }
bool ident_char(char c) { return std::isalnum(static_cast<unsigned char>(c)) || c == '_'; }

class Translator {
 public:
  Translator(const std::string& src, const HipifyOptions& opt)
      : src_(src), opt_(opt) {}

  HipifyResult run() {
    out_.reserve(src_.size() + src_.size() / 8);
    while (i_ < src_.size()) step();
    if (opt_.warp_size_audit) audit();
    HipifyResult r;
    r.output = std::move(out_);
    r.replacements = replacements_;
    r.rule_hits = std::move(rule_hits_);
    r.warnings = std::move(warnings_);
    return r;
  }

 private:
  void step() {
    const char c = src_[i_];
    // Comments and literals pass through untouched.
    if (c == '/' && i_ + 1 < src_.size() && src_[i_ + 1] == '/') {
      copy_until("\n");
      return;
    }
    if (c == '/' && i_ + 1 < src_.size() && src_[i_ + 1] == '*') {
      copy_through("*/");
      return;
    }
    if (c == '"') {
      copy_string('"');
      return;
    }
    if (c == '\'') {
      copy_string('\'');
      return;
    }
    if (c == '#' && at_line_start()) {
      rewrite_directive();
      return;
    }
    if (opt_.rewrite_launches && c == '<' && src_.compare(i_, 3, "<<<") == 0) {
      rewrite_launch();
      return;
    }
    if (ident_start(c)) {
      rewrite_identifier();
      return;
    }
    if (c == '\n') ++line_;
    out_ += c;
    ++i_;
  }

  bool at_line_start() const {
    for (std::size_t k = out_.size(); k > 0; --k) {
      const char p = out_[k - 1];
      if (p == '\n') return true;
      if (p != ' ' && p != '\t') return false;
    }
    return true;
  }

  void copy_until(const char* stop) {  // stop char excluded
    const std::size_t e = src_.find(stop, i_);
    const std::size_t end = e == std::string::npos ? src_.size() : e;
    append_range(i_, end);
    i_ = end;
  }

  void copy_through(const char* stop) {
    std::size_t e = src_.find(stop, i_ + 2);
    e = e == std::string::npos ? src_.size() : e + 2;
    append_range(i_, e);
    i_ = e;
  }

  void copy_string(char quote) {
    std::size_t j = i_ + 1;
    while (j < src_.size()) {
      if (src_[j] == '\\') {
        j += 2;
        continue;
      }
      if (src_[j] == quote) {
        ++j;
        break;
      }
      ++j;
    }
    append_range(i_, j);
    i_ = j;
  }

  void append_range(std::size_t b, std::size_t e) {
    for (std::size_t k = b; k < e && k < src_.size(); ++k) {
      if (src_[k] == '\n') ++line_;
      out_ += src_[k];
    }
  }

  void rewrite_directive() {
    std::size_t e = src_.find('\n', i_);
    e = e == std::string::npos ? src_.size() : e;
    std::string dir = src_.substr(i_, e - i_);
    for (const auto& [from, to] : include_map()) {
      const std::size_t pos = dir.find(from);
      if (pos != std::string::npos) {
        dir.replace(pos, from.size(), to);
        ++replacements_;
        ++rule_hits_[from];
      }
    }
    out_ += dir;
    i_ = e;
  }

  std::string read_identifier() {
    std::size_t j = i_;
    while (j < src_.size() && ident_char(src_[j])) ++j;
    std::string id = src_.substr(i_, j - i_);
    i_ = j;
    return id;
  }

  // Splits "(...)" starting at src_[i_] (must be '(') into top-level args;
  // returns false if unbalanced.
  bool parse_call_args(std::vector<std::string>* args) {
    if (i_ >= src_.size() || src_[i_] != '(') return false;
    int depth = 0;
    std::string cur;
    std::size_t j = i_;
    for (; j < src_.size(); ++j) {
      const char c = src_[j];
      if (c == '(' || c == '[' || c == '{') {
        if (depth++ > 0) cur += c;
        continue;
      }
      if (c == ')' || c == ']' || c == '}') {
        if (--depth == 0) break;
        cur += c;
        continue;
      }
      if (c == ',' && depth == 1) {
        args->push_back(std::string(trim(cur)));
        cur.clear();
        continue;
      }
      if (depth >= 1) cur += c;
    }
    if (j >= src_.size()) return false;
    if (!trim(cur).empty()) args->push_back(std::string(trim(cur)));
    for (std::size_t k = i_; k <= j; ++k) {
      if (src_[k] == '\n') ++line_;
    }
    i_ = j + 1;
    return true;
  }

  void rewrite_identifier() {
    const std::size_t save = i_;
    const std::string id = read_identifier();

    if (const auto it = sync_rules().find(id); it != sync_rules().end()) {
      if (!it->second.drop_first_arg) {
        out_ += it->second.hip_name;
        ++replacements_;
        ++rule_hits_[id];
        return;
      }
      std::vector<std::string> args;
      const std::size_t before = i_;
      if (parse_call_args(&args) && args.size() >= 2) {
        out_ += it->second.hip_name;
        out_ += '(';
        for (std::size_t k = 1; k < args.size(); ++k) {
          if (k > 1) out_ += ", ";
          out_ += args[k];
        }
        out_ += ')';
        ++replacements_;
        ++rule_hits_[id];
        return;
      }
      i_ = before;
      warn("could not parse arguments of " + id + "; left unconverted");
      out_ += id;
      return;
    }

    if (const auto it = map_instance().find(id); it != map_instance().end()) {
      out_ += it->second;
      if (it->second != id) {
        ++replacements_;
        ++rule_hits_[id];
      }
      return;
    }

    if (starts_with(id, "cuda") || starts_with(id, "cublas") ||
        starts_with(id, "curand") || starts_with(id, "cufft") ||
        starts_with(id, "cusparse")) {
      warn("unrecognized CUDA identifier '" + id + "' left unconverted");
    }
    (void)save;
    out_ += id;
  }

  // Rewrites `name<<<g, b[, shm[, stream]]>>>(args)` into
  // hipLaunchKernelGGL(name, dim3(g), dim3(b), shm, stream, args).
  void rewrite_launch() {
    // The kernel name (possibly with a template argument list) was already
    // emitted; peel it off the output tail.
    std::size_t tail = out_.size();
    while (tail > 0 && std::isspace(static_cast<unsigned char>(out_[tail - 1]))) {
      --tail;
    }
    std::size_t name_end = tail;
    if (tail > 0 && out_[tail - 1] == '>') {
      int depth = 0;
      std::size_t k = tail;
      while (k > 0) {
        const char c = out_[--k];
        if (c == '>') ++depth;
        if (c == '<' && --depth == 0) break;
      }
      tail = k;
    }
    while (tail > 0 && ident_char(out_[tail - 1])) --tail;
    const std::string name = out_.substr(tail, name_end - tail);
    if (name.empty() || !ident_start(name[0])) {
      warn("<<< without a preceding kernel name; left unconverted");
      out_ += "<<<";
      i_ += 3;
      return;
    }

    // Parse the launch configuration between <<< and >>>.
    const std::size_t cfg_end = src_.find(">>>", i_ + 3);
    if (cfg_end == std::string::npos) {
      warn("unterminated <<<...>>> launch");
      out_ += "<<<";
      i_ += 3;
      return;
    }
    const std::string cfg = src_.substr(i_ + 3, cfg_end - i_ - 3);
    std::vector<std::string> cfg_args;
    {
      int depth = 0;
      std::string cur;
      for (char c : cfg) {
        if (c == '(' || c == '[' || c == '{' || c == '<') ++depth;
        if (c == ')' || c == ']' || c == '}' || c == '>') --depth;
        if (c == ',' && depth == 0) {
          cfg_args.push_back(std::string(trim(cur)));
          cur.clear();
        } else {
          cur += c;
        }
      }
      if (!trim(cur).empty()) cfg_args.push_back(std::string(trim(cur)));
    }
    if (cfg_args.size() < 2 || cfg_args.size() > 4) {
      warn("launch config with " + std::to_string(cfg_args.size()) +
           " arguments; left unconverted");
      out_ += "<<<";
      i_ += 3;
      return;
    }
    for (std::size_t k = i_; k < cfg_end + 3; ++k) {
      if (src_[k] == '\n') ++line_;
    }
    i_ = cfg_end + 3;
    while (i_ < src_.size() && std::isspace(static_cast<unsigned char>(src_[i_]))) {
      if (src_[i_] == '\n') ++line_;
      ++i_;
    }
    std::vector<std::string> call_args;
    if (!parse_call_args(&call_args)) {
      warn("kernel launch without argument list; left unconverted");
      out_ += "<<<" + cfg + ">>>";
      return;
    }

    out_.erase(tail);
    const bool templated = name_end > tail && out_.size() >= tail &&
                           name.find('<') != std::string::npos;
    out_ += "hipLaunchKernelGGL(";
    out_ += templated ? "HIP_KERNEL_NAME(" + name + ")" : name;
    out_ += ", dim3(" + cfg_args[0] + "), dim3(" + cfg_args[1] + "), ";
    out_ += cfg_args.size() >= 3 && !cfg_args[2].empty() ? cfg_args[2] : "0";
    out_ += ", ";
    out_ += cfg_args.size() >= 4 ? cfg_args[3] : "0";
    for (const auto& a : call_args) {
      out_ += ", ";
      out_ += a;
    }
    out_ += ')';
    ++replacements_;
    ++rule_hits_["<<<>>>"];
  }

  void warn(std::string msg) { warnings_.push_back({line_, std::move(msg)}); }

  // Post-pass: flag hardcoded warp-width constants within two lines of a
  // wavefront collective (the paper's §3 porting bug — reduction loops
  // start at offset 16 on the line *above* the __shfl_down call).
  void audit() {
    std::vector<std::string> lines;
    {
      std::istringstream is(out_);
      std::string ln;
      while (std::getline(is, ln)) lines.push_back(std::move(ln));
    }
    auto is_collective = [](const std::string& ln) {
      return ln.find("shfl") != std::string::npos ||
             ln.find("ballot") != std::string::npos ||
             ln.find("WARP") != std::string::npos ||
             ln.find("warpSize") != std::string::npos;
    };
    for (std::size_t i = 0; i < lines.size(); ++i) {
      bool near_collective = false;
      const std::size_t lo = i >= 2 ? i - 2 : 0;
      const std::size_t hi = std::min(i + 2, lines.size() - 1);
      for (std::size_t k = lo; k <= hi && !near_collective; ++k) {
        near_collective = is_collective(lines[k]);
      }
      if (!near_collective) continue;
      const auto toks = split(lines[i], " \t(),;=<>+-*/&|{}%");
      for (const auto& t : toks) {
        if (t == "32" || t == "16") {
          warnings_.push_back(
              {i + 1,
               "warp-size audit: literal " + std::string(t) +
                   " near a wavefront collective — AMD wavefronts are 64 "
                   "lanes; derive widths from warpSize"});
          break;
        }
      }
    }
  }

  const std::string& src_;
  HipifyOptions opt_;
  std::string out_;
  std::size_t i_ = 0;
  std::size_t line_ = 1;
  std::size_t replacements_ = 0;
  std::map<std::string, std::size_t> rule_hits_;
  std::vector<Warning> warnings_;
};

}  // namespace

std::string HipifyResult::format_report(const std::string& filename) const {
  std::ostringstream os;
  os << "hipify report for " << filename << "\n";
  os << "  replacements: " << replacements << "\n";
  for (const auto& [rule, n] : rule_hits) {
    os << "    " << rule << " -> " << n << "\n";
  }
  if (warnings.empty()) {
    os << "  warnings: none\n";
  } else {
    os << "  warnings (" << warnings.size() << "):\n";
    for (const auto& w : warnings) {
      os << "    line " << w.line << ": " << w.message << "\n";
    }
  }
  return os.str();
}

HipifyResult hipify_source(const std::string& cuda_source,
                           const HipifyOptions& opt) {
  return Translator(cuda_source, opt).run();
}

HipifyResult hipify_file(const std::string& in_path, const std::string& out_path,
                         const HipifyOptions& opt) {
  std::ifstream in(in_path, std::ios::binary);
  check(in.good(), "hipify_file: cannot open '" + in_path + "'");
  std::ostringstream ss;
  ss << in.rdbuf();
  HipifyResult r = hipify_source(ss.str(), opt);
  std::ofstream out(out_path, std::ios::binary);
  check(out.good(), "hipify_file: cannot open '" + out_path + "' for writing");
  out << r.output;
  check(out.good(), "hipify_file: write failed");
  return r;
}

const std::map<std::string, std::string>& api_map() { return map_instance(); }

}  // namespace qhip::hipify
