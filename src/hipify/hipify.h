// hipify: CUDA -> HIP source-to-source translation (hipify-perl equivalent).
//
// The paper's port of qsim was produced by running hipify-perl over the
// seven CUDA backend files (§3). This module reimplements that translator:
//
//  * an API mapping table (cudaMalloc -> hipMalloc, cudaStream_t ->
//    hipStream_t, <cuda_runtime.h> -> <hip/hip_runtime.h>, ...);
//  * triple-chevron kernel launches `k<<<g, b, shm, s>>>(args)` rewritten to
//    `hipLaunchKernelGGL(k, g, b, shm, s, args)` with nesting-aware
//    argument parsing;
//  * warp-collective `_sync` intrinsics (`__shfl_down_sync(mask, v, d)`)
//    rewritten to their HIP forms with the mask argument dropped
//    (`__shfl_down(v, d)`);
//  * a *warp-size audit*: HIP wavefronts are 64-wide, so CUDA code with
//    hardcoded 32/16 warp constants near collectives is flagged — the exact
//    bug class the paper fixed by hand after running hipify.
//
// Identifiers are matched on token boundaries and skipped inside string
// literals and comments, like the real tool.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

namespace qhip::hipify {

struct Warning {
  std::size_t line;      // 1-based
  std::string message;
};

struct HipifyResult {
  std::string output;
  std::size_t replacements = 0;
  std::map<std::string, std::size_t> rule_hits;  // cuda identifier -> count
  std::vector<Warning> warnings;

  std::string format_report(const std::string& filename = "<source>") const;
};

struct HipifyOptions {
  bool rewrite_launches = true;   // <<<...>>> -> hipLaunchKernelGGL
  bool warp_size_audit = true;    // flag hardcoded 32/16 near collectives
};

// Translates one CUDA source. Never throws on translatable input; unknown
// cuda* identifiers produce warnings and are left untouched.
HipifyResult hipify_source(const std::string& cuda_source,
                           const HipifyOptions& opt = {});

// Reads `in_path`, writes the translation to `out_path` (parent directory
// must exist); returns the result (output also kept in memory).
HipifyResult hipify_file(const std::string& in_path, const std::string& out_path,
                         const HipifyOptions& opt = {});

// The full mapping table (for tests and documentation).
const std::map<std::string, std::string>& api_map();

}  // namespace qhip::hipify
