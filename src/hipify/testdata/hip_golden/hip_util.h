// Miniature of qsim's cuda_util.h (conversion inventory item 6): error
// checking and the warp-level reduction helpers.
#pragma once

#include <hip/hip_runtime.h>

#include <cstdio>

#define ErrorCheck(call)                                              \
  do {                                                                \
    hipError_t err__ = (call);                                       \
    if (err__ != hipSuccess) {                                       \
      std::fprintf(stderr, "%s\n", hipGetErrorString(err__));        \
      abort();                                                        \
    }                                                                 \
  } while (0)

__device__ inline double WarpReduceSum(double v) {
  for (int offset = 16; offset > 0; offset >>= 1) {
    v += __shfl_down(v, offset);
  }
  return v;
}

__device__ inline double BlockReduceSum(double v, double* scratch) {
  v = WarpReduceSum(v);
  if (threadIdx.x % 32 == 0) scratch[threadIdx.x / 32] = v;
  __syncthreads();
  double total = 0;
  if (threadIdx.x == 0) {
    for (unsigned w = 0; w < blockDim.x / 32; ++w) total += scratch[w];
  }
  __syncthreads();
  return total;
}
