// Miniature of qsim's state_space_cuda_kernels.h (conversion inventory
// item 5): reductions, element-wise operations and sampling kernels.
#pragma once

#include <hip/hip_runtime.h>

#include "cuda_util.h"

template <typename FP>
__global__ void Norm2_Kernel(const FP* state, unsigned long long size,
                             double* partial) {
  double acc = 0;
  for (unsigned long long i = blockIdx.x * blockDim.x + threadIdx.x; i < size;
       i += 1ull * gridDim.x * blockDim.x) {
    acc += static_cast<double>(state[i]) * state[i];
  }
  extern __shared__ double scratch[];
  acc = BlockReduceSum(acc, scratch);
  if (threadIdx.x == 0) partial[blockIdx.x] = acc;
}

template <typename FP>
__global__ void Scale_Kernel(FP* state, unsigned long long size, FP s) {
  for (unsigned long long i = blockIdx.x * blockDim.x + threadIdx.x; i < size;
       i += 1ull * gridDim.x * blockDim.x) {
    state[i] *= s;
  }
}

template <typename FP>
__global__ void Add_Kernel(FP* dst, const FP* src, unsigned long long size) {
  for (unsigned long long i = blockIdx.x * blockDim.x + threadIdx.x; i < size;
       i += 1ull * gridDim.x * blockDim.x) {
    dst[i] += src[i];
  }
}
