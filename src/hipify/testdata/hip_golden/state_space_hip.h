// Miniature of qsim's state_space_cuda.h (conversion inventory item 4):
// host-side state manipulation — set/normalize/sample — launching the
// state-space kernels and moving partial results over the PCIe bus.
#pragma once

#include <hip/hip_runtime.h>

#include "state_space_cuda_kernels.h"

template <typename FP>
class StateSpaceCUDA {
 public:
  double Norm(const FP* d_state, unsigned long long size) {
    const unsigned blocks = 512;
    double* d_partial;
    hipMalloc(&d_partial, blocks * sizeof(double));
    hipLaunchKernelGGL(HIP_KERNEL_NAME(Norm2_Kernel<FP>), dim3(blocks), dim3(256), 8 * sizeof(double), 0, d_state, size, d_partial);
    double partial[512];
    hipMemcpy(partial, d_partial, blocks * sizeof(double),
               hipMemcpyDeviceToHost);
    hipFree(d_partial);
    double total = 0;
    for (unsigned b = 0; b < blocks; ++b) total += partial[b];
    return total;
  }

  void SetStateZero(FP* d_state, unsigned long long size) {
    hipMemset(d_state, 0, 2 * size * sizeof(FP));
    const FP one[2] = {1, 0};
    hipMemcpy(d_state, one, sizeof(one), hipMemcpyHostToDevice);
  }
};
