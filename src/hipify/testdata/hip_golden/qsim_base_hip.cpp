// Miniature of qsim's qsim_base_cuda.cu (conversion inventory item 1):
// the stand-alone driver that loads a circuit file, runs the state-vector
// simulation on the GPU and prints amplitudes.
#include <hip/hip_runtime.h>

#include <cstdio>

#include "simulator_cuda.h"

int main(int argc, char** argv) {
  int device_count = 0;
  hipGetDeviceCount(&device_count);
  if (device_count == 0) {
    std::fprintf(stderr, "no CUDA device\n");
    return 1;
  }
  hipSetDevice(0);

  hipDeviceProp_t prop;
  hipGetDeviceProperties(&prop, 0);
  std::printf("running on %s\n", prop.name);

  SimulatorCUDA<float> sim;
  const int rc = sim.RunCircuitFile(argc > 1 ? argv[1] : "circuit_q30");

  hipError_t err = hipGetLastError();
  if (err != hipSuccess) {
    std::fprintf(stderr, "CUDA error: %s\n", hipGetErrorString(err));
    return 1;
  }
  hipDeviceSynchronize();
  hipDeviceReset();
  return rc;
}
