// Miniature of qsim's simulator_cuda.h (conversion inventory item 2):
// ApplyGate / ApplyControlledGate host methods that stage the gate matrix
// and launch the H or L kernel on the backend stream.
#pragma once

#include <hip/hip_runtime.h>

#include "simulator_cuda_kernels.h"

template <typename FP>
class SimulatorCUDA {
 public:
  SimulatorCUDA() {
    hipStreamCreate(&stream_);
    hipMalloc(&d_matrix_, 64 * 64 * 2 * sizeof(FP));
  }

  ~SimulatorCUDA() {
    hipFree(d_matrix_);
    hipStreamDestroy(stream_);
  }

  void ApplyGate(const FP* matrix, unsigned q, unsigned num_qubits,
                 const unsigned* targets, FP* d_state) {
    const unsigned d = 1u << q;
    hipMemcpyAsync(d_matrix_, matrix, 2ull * d * d * sizeof(FP),
                    hipMemcpyHostToDevice, stream_);
    const unsigned long long groups = (1ull << num_qubits) >> q;
    if (targets[0] >= 5) {
      const unsigned blocks = (groups + 63) / 64;
      hipLaunchKernelGGL(HIP_KERNEL_NAME(ApplyGateH_Kernel<FP>), dim3(blocks), dim3(64), 0, stream_, d_matrix_, q, groups, d_state);
    } else {
      hipLaunchKernelGGL(HIP_KERNEL_NAME(ApplyGateL_Kernel<FP>), dim3(groups), dim3(32), 2 * 1024 * sizeof(FP), stream_, d_matrix_, q, groups, d_state);
    }
  }

  int RunCircuitFile(const char* path);

 private:
  hipStream_t stream_;
  FP* d_matrix_;
};
