// Miniature of qsim's vectorspace_cuda.h (conversion inventory item 7):
// templated device-vector management — allocation, copies, sync.
#pragma once

#include <hip/hip_runtime.h>

template <typename FP>
class VectorSpaceCUDA {
 public:
  FP* Create(unsigned long long size) {
    FP* p = nullptr;
    hipMalloc(&p, 2 * size * sizeof(FP));
    return p;
  }

  void Free(FP* p) { hipFree(p); }

  void CopyToHost(FP* dst, const FP* src, unsigned long long size) {
    hipMemcpy(dst, src, 2 * size * sizeof(FP), hipMemcpyDeviceToHost);
    hipDeviceSynchronize();
  }

  void CopyToDevice(FP* dst, const FP* src, unsigned long long size,
                    hipStream_t stream) {
    hipMemcpyAsync(dst, src, 2 * size * sizeof(FP), hipMemcpyHostToDevice,
                    stream);
    hipStreamSynchronize(stream);
  }
};
