// Miniature of qsim's simulator_cuda_kernels.h (conversion inventory item
// 3): the ApplyGateH / ApplyGateL device kernels. Note the warp-level
// reduction in ApplyGateSum_Kernel written the CUDA way, with a hardcoded
// 32-lane warp — the exact construct §3 of the paper had to fix for the
// 64-lane AMD wavefront.
#pragma once

#include <hip/hip_runtime.h>

template <typename FP>
__global__ void ApplyGateH_Kernel(const FP* matrix, unsigned q,
                                  unsigned long long groups, FP* state) {
  const unsigned long long g = blockIdx.x * blockDim.x + threadIdx.x;
  if (g >= groups) return;
  // ... gather, multiply, scatter (elided in the miniature) ...
  state[2 * g] *= matrix[0];
}

template <typename FP>
__global__ void ApplyGateL_Kernel(const FP* matrix, unsigned q,
                                  unsigned long long groups, FP* state) {
  extern __shared__ unsigned char smem[];
  FP* re = reinterpret_cast<FP*>(smem);
  FP* im = re + 1024;
  re[threadIdx.x] = state[2 * (blockIdx.x * blockDim.x + threadIdx.x)];
  im[threadIdx.x] = state[2 * (blockIdx.x * blockDim.x + threadIdx.x) + 1];
  __syncthreads();
  state[2 * (blockIdx.x * blockDim.x + threadIdx.x)] =
      re[threadIdx.x] * matrix[0] - im[threadIdx.x] * matrix[1];
  __syncthreads();
}

template <typename FP>
__global__ void ApplyGateSum_Kernel(const FP* state, unsigned long long size,
                                    double* partial) {
  double v = 0;
  for (unsigned long long i = blockIdx.x * blockDim.x + threadIdx.x; i < size;
       i += 1ull * gridDim.x * blockDim.x) {
    v += static_cast<double>(state[i]) * state[i];
  }
  for (int offset = 16; offset > 0; offset >>= 1) {
    v += __shfl_down(v, offset);
  }
  if (threadIdx.x % 32 == 0) partial[blockIdx.x] = v;
}
