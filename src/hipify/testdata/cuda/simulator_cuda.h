// Miniature of qsim's simulator_cuda.h (conversion inventory item 2):
// ApplyGate / ApplyControlledGate host methods that stage the gate matrix
// and launch the H or L kernel on the backend stream.
#pragma once

#include <cuda_runtime.h>

#include "simulator_cuda_kernels.h"

template <typename FP>
class SimulatorCUDA {
 public:
  SimulatorCUDA() {
    cudaStreamCreate(&stream_);
    cudaMalloc(&d_matrix_, 64 * 64 * 2 * sizeof(FP));
  }

  ~SimulatorCUDA() {
    cudaFree(d_matrix_);
    cudaStreamDestroy(stream_);
  }

  void ApplyGate(const FP* matrix, unsigned q, unsigned num_qubits,
                 const unsigned* targets, FP* d_state) {
    const unsigned d = 1u << q;
    cudaMemcpyAsync(d_matrix_, matrix, 2ull * d * d * sizeof(FP),
                    cudaMemcpyHostToDevice, stream_);
    const unsigned long long groups = (1ull << num_qubits) >> q;
    if (targets[0] >= 5) {
      const unsigned blocks = (groups + 63) / 64;
      ApplyGateH_Kernel<FP><<<blocks, 64, 0, stream_>>>(d_matrix_, q, groups,
                                                        d_state);
    } else {
      ApplyGateL_Kernel<FP><<<groups, 32, 2 * 1024 * sizeof(FP), stream_>>>(
          d_matrix_, q, groups, d_state);
    }
  }

  int RunCircuitFile(const char* path);

 private:
  cudaStream_t stream_;
  FP* d_matrix_;
};
