// Miniature of qsim's vectorspace_cuda.h (conversion inventory item 7):
// templated device-vector management — allocation, copies, sync.
#pragma once

#include <cuda_runtime.h>

template <typename FP>
class VectorSpaceCUDA {
 public:
  FP* Create(unsigned long long size) {
    FP* p = nullptr;
    cudaMalloc(&p, 2 * size * sizeof(FP));
    return p;
  }

  void Free(FP* p) { cudaFree(p); }

  void CopyToHost(FP* dst, const FP* src, unsigned long long size) {
    cudaMemcpy(dst, src, 2 * size * sizeof(FP), cudaMemcpyDeviceToHost);
    cudaDeviceSynchronize();
  }

  void CopyToDevice(FP* dst, const FP* src, unsigned long long size,
                    cudaStream_t stream) {
    cudaMemcpyAsync(dst, src, 2 * size * sizeof(FP), cudaMemcpyHostToDevice,
                    stream);
    cudaStreamSynchronize(stream);
  }
};
