// Miniature of qsim's state_space_cuda.h (conversion inventory item 4):
// host-side state manipulation — set/normalize/sample — launching the
// state-space kernels and moving partial results over the PCIe bus.
#pragma once

#include <cuda_runtime.h>

#include "state_space_cuda_kernels.h"

template <typename FP>
class StateSpaceCUDA {
 public:
  double Norm(const FP* d_state, unsigned long long size) {
    const unsigned blocks = 512;
    double* d_partial;
    cudaMalloc(&d_partial, blocks * sizeof(double));
    Norm2_Kernel<FP><<<blocks, 256, 8 * sizeof(double)>>>(d_state, size,
                                                          d_partial);
    double partial[512];
    cudaMemcpy(partial, d_partial, blocks * sizeof(double),
               cudaMemcpyDeviceToHost);
    cudaFree(d_partial);
    double total = 0;
    for (unsigned b = 0; b < blocks; ++b) total += partial[b];
    return total;
  }

  void SetStateZero(FP* d_state, unsigned long long size) {
    cudaMemset(d_state, 0, 2 * size * sizeof(FP));
    const FP one[2] = {1, 0};
    cudaMemcpy(d_state, one, sizeof(one), cudaMemcpyHostToDevice);
  }
};
