// Circuit optimization passes (the transpiler layer of §2.2: "fusion is
// carried out by a quantum transpiler, which thoroughly analyzes the
// quantum circuit" — fusion lives in src/fusion; these are the standard
// cleanup passes that run before it).
//
// Passes (all unitary-preserving, property-tested):
//  * cancel_adjacent_inverses — consecutive gates on identical qubit sets
//    whose product is the identity are removed (H H, X X, CZ CZ, S Sdg,
//    and any numeric pair with G2 G1 = I).
//  * merge_single_qubit_runs — maximal runs of 1-qubit gates on the same
//    qubit collapse into one matrix gate (and vanish if the product is I).
//  * drop_identities — removes gates whose matrix is the identity up to
//    global phase (id1/id2, rz(0), fused no-ops).
//
// optimize() runs the passes to a fixed point and reports statistics.
#pragma once

#include <cstddef>
#include <string>

#include "src/core/circuit.h"

namespace qhip::transpile {

struct OptimizeStats {
  std::size_t input_gates = 0;
  std::size_t output_gates = 0;
  std::size_t cancelled_pairs = 0;
  std::size_t merged_runs = 0;
  std::size_t dropped_identities = 0;
  unsigned rounds = 0;

  std::string summary() const;
};

struct OptimizeResult {
  Circuit circuit;
  OptimizeStats stats;
};

// Individual passes (single sweep each). Measurements act as barriers.
Circuit cancel_adjacent_inverses(const Circuit& c, OptimizeStats* stats = nullptr);
Circuit merge_single_qubit_runs(const Circuit& c, OptimizeStats* stats = nullptr);
Circuit drop_identities(const Circuit& c, OptimizeStats* stats = nullptr);

// All passes, iterated to a fixed point (bounded rounds).
OptimizeResult optimize(const Circuit& c);

}  // namespace qhip::transpile
