#include "src/transpile/optimizer.h"

#include <cmath>
#include <vector>

#include "src/base/error.h"
#include "src/base/strings.h"

namespace qhip::transpile {

namespace {

// || M - e^{i phi} I ||, minimized over the global phase phi.
bool is_identity_up_to_phase(const CMatrix& m, double tol = 1e-10) {
  // Phase from the largest diagonal entry.
  cplx64 diag{};
  for (std::size_t i = 0; i < m.dim(); ++i) {
    if (std::abs(m.at(i, i)) > std::abs(diag)) diag = m.at(i, i);
  }
  if (std::abs(diag) < 1e-12) return false;
  const cplx64 phase = diag / std::abs(diag);
  for (std::size_t r = 0; r < m.dim(); ++r) {
    for (std::size_t c = 0; c < m.dim(); ++c) {
      const cplx64 want = r == c ? phase : cplx64{};
      if (std::abs(m.at(r, c) - want) > tol) return false;
    }
  }
  return true;
}

// Normalizes to sorted targets with controls folded in; measurements pass
// through.
std::vector<Gate> canonical_gates(const Circuit& c) {
  std::vector<Gate> out;
  out.reserve(c.size());
  for (const auto& g : c.gates) {
    if (g.is_measurement()) {
      out.push_back(normalized(g));
    } else {
      out.push_back(normalized(g.controls.empty() ? g : expand_controls(g)));
    }
  }
  return out;
}

bool touches(const Gate& g, const std::vector<qubit_t>& qubits) {
  for (qubit_t a : g.qubits) {
    for (qubit_t b : qubits) {
      if (a == b) return true;
    }
  }
  return false;
}

Circuit rebuild(unsigned num_qubits, const std::vector<Gate>& gates,
                const std::vector<bool>& alive) {
  Circuit out;
  out.num_qubits = num_qubits;
  unsigned time = 0;
  for (std::size_t i = 0; i < gates.size(); ++i) {
    if (!alive[i]) continue;
    Gate g = gates[i];
    g.time = time++;
    out.gates.push_back(std::move(g));
  }
  return out;
}

}  // namespace

std::string OptimizeStats::summary() const {
  return strfmt("%zu -> %zu gates (%u rounds: %zu inverse pairs, %zu runs "
                "merged, %zu identities dropped)",
                input_gates, output_gates, rounds, cancelled_pairs,
                merged_runs, dropped_identities);
}

Circuit cancel_adjacent_inverses(const Circuit& c, OptimizeStats* stats) {
  const std::vector<Gate> gates = canonical_gates(c);
  std::vector<bool> alive(gates.size(), true);
  for (std::size_t i = 0; i < gates.size(); ++i) {
    if (!alive[i] || gates[i].is_measurement()) continue;
    // First live successor touching any of gate i's qubits.
    for (std::size_t j = i + 1; j < gates.size(); ++j) {
      if (!alive[j] || !touches(gates[j], gates[i].qubits)) continue;
      if (!gates[j].is_measurement() && gates[j].qubits == gates[i].qubits &&
          is_identity_up_to_phase(gates[j].matrix * gates[i].matrix)) {
        alive[i] = alive[j] = false;
        if (stats) ++stats->cancelled_pairs;
      }
      break;  // only the immediate neighbour on this qubit set
    }
  }
  return rebuild(c.num_qubits, gates, alive);
}

Circuit merge_single_qubit_runs(const Circuit& c, OptimizeStats* stats) {
  std::vector<Gate> gates = canonical_gates(c);
  std::vector<bool> alive(gates.size(), true);
  for (std::size_t i = 0; i < gates.size(); ++i) {
    if (!alive[i] || gates[i].is_measurement() || gates[i].num_targets() != 1) {
      continue;
    }
    const qubit_t q = gates[i].qubits[0];
    // Collect the maximal run starting at i.
    std::vector<std::size_t> run = {i};
    for (std::size_t j = i + 1; j < gates.size(); ++j) {
      if (!alive[j] || !touches(gates[j], {q})) continue;
      if (gates[j].is_measurement() || gates[j].num_targets() != 1) break;
      run.push_back(j);
    }
    if (run.size() < 2) continue;
    CMatrix acc = gates[i].matrix;
    for (std::size_t k = 1; k < run.size(); ++k) {
      acc = gates[run[k]].matrix * acc;
      alive[run[k]] = false;
    }
    gates[i].name = "mg1";  // round-trips through the qsim text format
    gates[i].params.clear();
    gates[i].matrix = std::move(acc);
    if (stats) ++stats->merged_runs;
    if (is_identity_up_to_phase(gates[i].matrix)) {
      alive[i] = false;
      if (stats) ++stats->dropped_identities;
    }
  }
  return rebuild(c.num_qubits, gates, alive);
}

Circuit drop_identities(const Circuit& c, OptimizeStats* stats) {
  const std::vector<Gate> gates = canonical_gates(c);
  std::vector<bool> alive(gates.size(), true);
  for (std::size_t i = 0; i < gates.size(); ++i) {
    if (gates[i].is_measurement()) continue;
    if (is_identity_up_to_phase(gates[i].matrix)) {
      alive[i] = false;
      if (stats) ++stats->dropped_identities;
    }
  }
  return rebuild(c.num_qubits, gates, alive);
}

OptimizeResult optimize(const Circuit& c) {
  OptimizeResult r;
  r.stats.input_gates = c.size();
  r.circuit = c;
  for (unsigned round = 0; round < 16; ++round) {
    const std::size_t before = r.circuit.size();
    r.circuit = drop_identities(r.circuit, &r.stats);
    r.circuit = cancel_adjacent_inverses(r.circuit, &r.stats);
    r.circuit = merge_single_qubit_runs(r.circuit, &r.stats);
    ++r.stats.rounds;
    if (r.circuit.size() == before) break;
  }
  r.stats.output_gates = r.circuit.size();
  return r;
}

}  // namespace qhip::transpile
