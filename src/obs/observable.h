// Pauli-string observables and expectation values (qsim's ExpectationValue
// feature, which Cirq's simulator interface exposes and VQE-style
// applications depend on — paper §1 motivates VQE explicitly).
//
// An Observable is a real/complex-weighted sum of Pauli strings. For one
// string P = ⊗_i P_i acting on basis state |y>:
//
//   P |y> = phase(y) |y ^ flip>,
//   flip  = bits with X or Y,
//   phase(y) = (-1)^popcount(y & (Z|Y bits)) * i^{#Y}
//
// so <psi|P|psi> = sum_y conj(a_{y^flip}) * phase(y) * a_y — one streaming
// pass over the amplitudes per term, no matrix ever materialized. The same
// expression is evaluated by the host path here and by the device kernel
// in src/hipsim/state_space_hip.h.
#pragma once

#include <bit>
#include <cstdint>
#include <string>
#include <vector>

#include "src/base/bits.h"
#include "src/core/matrix.h"
#include "src/base/threadpool.h"
#include "src/statespace/statevector.h"

namespace qhip::obs {

enum class Pauli : std::uint8_t { kX, kY, kZ };

struct PauliTerm {
  qubit_t qubit;
  Pauli op;
};

struct PauliString {
  cplx64 coefficient{1.0};
  std::vector<PauliTerm> terms;  // identity on unlisted qubits

  // Bit masks used by the streaming evaluation.
  index_t flip_mask() const;   // X and Y qubits
  index_t phase_mask() const;  // Z and Y qubits
  unsigned num_y() const;

  // Throws on repeated qubits or out-of-range targets.
  void validate(unsigned num_qubits) const;
};

// Weighted sum of Pauli strings.
struct Observable {
  std::vector<PauliString> strings;

  void validate(unsigned num_qubits) const;
  std::size_t size() const { return strings.size(); }

  // True when every coefficient is real (a Hermitian observable).
  bool is_hermitian(double tol = 1e-12) const;
};

// --- construction helpers ----------------------------------------------------

PauliString pauli_z(qubit_t q, double coeff = 1.0);
PauliString pauli_x(qubit_t q, double coeff = 1.0);
PauliString pauli_zz(qubit_t a, qubit_t b, double coeff = 1.0);

// H = -J sum_i Z_i Z_{i+1} - h sum_i X_i on an open chain of n qubits.
Observable transverse_field_ising(unsigned n, double j, double h);

// Parses strings like "1.5 * Z0 Z1", "-0.7*X3", "Y2" (one string per call).
PauliString parse_pauli_string(const std::string& text);

// --- evaluation ---------------------------------------------------------------

// <psi| P |psi> for one string; the string's coefficient is included in the
// returned value.
template <typename FP>
cplx64 expectation(const PauliString& p, const StateVector<FP>& s,
                   ThreadPool& pool = ThreadPool::shared()) {
  p.validate(s.num_qubits());
  const index_t flip = p.flip_mask();
  const index_t pmask = p.phase_mask();
  // i^{#Y}
  static constexpr cplx64 kIPow[4] = {
      {1, 0}, {0, 1}, {-1, 0}, {0, -1}};
  const cplx64 ipow = kIPow[p.num_y() % 4];

  const unsigned nt = pool.num_threads();
  std::vector<cplx64> partial(nt);
  pool.parallel_ranges(s.size(), [&](unsigned rank, index_t b, index_t e) {
    cplx64 acc{};
    for (index_t y = b; y < e; ++y) {
      const int sign = std::popcount(y & pmask) & 1 ? -1 : 1;
      const cplx64 ay(s[y].real(), s[y].imag());
      const cplx<FP>& af = s[y ^ flip];
      acc += std::conj(cplx64(af.real(), af.imag())) *
             (static_cast<double>(sign) * ay);
    }
    partial[rank] += acc;
  });
  cplx64 total{};
  for (const auto& v : partial) total += v;
  return p.coefficient * ipow * total;
}

// <psi| O |psi> summed over strings.
template <typename FP>
cplx64 expectation(const Observable& o, const StateVector<FP>& s,
                   ThreadPool& pool = ThreadPool::shared()) {
  cplx64 total{};
  for (const auto& p : o.strings) total += expectation(p, s, pool);
  return total;
}

// Dense matrix of an observable (for test oracles; n <= 10).
CMatrix to_dense(const Observable& o, unsigned num_qubits);

}  // namespace qhip::obs
