#include "src/obs/observable.h"

#include <cctype>
#include <set>

#include "src/base/error.h"
#include "src/base/strings.h"

namespace qhip::obs {

index_t PauliString::flip_mask() const {
  index_t m = 0;
  for (const auto& t : terms) {
    if (t.op != Pauli::kZ) m |= pow2(t.qubit);
  }
  return m;
}

index_t PauliString::phase_mask() const {
  index_t m = 0;
  for (const auto& t : terms) {
    if (t.op != Pauli::kX) m |= pow2(t.qubit);
  }
  return m;
}

unsigned PauliString::num_y() const {
  unsigned n = 0;
  for (const auto& t : terms) n += t.op == Pauli::kY ? 1 : 0;
  return n;
}

void PauliString::validate(unsigned num_qubits) const {
  std::set<qubit_t> seen;
  for (const auto& t : terms) {
    check(t.qubit < num_qubits,
          strfmt("PauliString: qubit %u out of range", t.qubit));
    check(seen.insert(t.qubit).second,
          strfmt("PauliString: qubit %u repeated", t.qubit));
  }
}

void Observable::validate(unsigned num_qubits) const {
  for (const auto& p : strings) p.validate(num_qubits);
}

bool Observable::is_hermitian(double tol) const {
  for (const auto& p : strings) {
    if (std::abs(p.coefficient.imag()) > tol) return false;
  }
  return true;
}

PauliString pauli_z(qubit_t q, double coeff) {
  return {cplx64{coeff}, {{q, Pauli::kZ}}};
}

PauliString pauli_x(qubit_t q, double coeff) {
  return {cplx64{coeff}, {{q, Pauli::kX}}};
}

PauliString pauli_zz(qubit_t a, qubit_t b, double coeff) {
  return {cplx64{coeff}, {{a, Pauli::kZ}, {b, Pauli::kZ}}};
}

Observable transverse_field_ising(unsigned n, double j, double h) {
  check(n >= 2, "transverse_field_ising: need at least 2 qubits");
  Observable o;
  for (unsigned i = 0; i + 1 < n; ++i) {
    o.strings.push_back(pauli_zz(i, i + 1, -j));
  }
  for (unsigned i = 0; i < n; ++i) {
    o.strings.push_back(pauli_x(i, -h));
  }
  return o;
}

PauliString parse_pauli_string(const std::string& text) {
  // Grammar: [coeff [*]] (X|Y|Z)<qubit> ...
  PauliString p;
  std::string body(trim(text));
  check(!body.empty(), "parse_pauli_string: empty input");

  // Optional leading coefficient (anything before the first X/Y/Z token).
  std::size_t i = 0;
  const auto is_pauli_start = [&](std::size_t k) {
    if (k >= body.size()) return false;
    const char c = static_cast<char>(std::toupper(body[k]));
    return (c == 'X' || c == 'Y' || c == 'Z') && k + 1 < body.size() &&
           std::isdigit(static_cast<unsigned char>(body[k + 1]));
  };
  std::size_t first_pauli = body.size();
  for (std::size_t k = 0; k < body.size(); ++k) {
    if (is_pauli_start(k)) {
      first_pauli = k;
      break;
    }
  }
  check(first_pauli < body.size(),
        "parse_pauli_string: no Pauli operator in '" + text + "'");
  std::string coeff(trim(body.substr(0, first_pauli)));
  if (!coeff.empty() && coeff.back() == '*') {
    coeff = std::string(trim(std::string_view(coeff).substr(0, coeff.size() - 1)));
  }
  if (!coeff.empty()) {
    p.coefficient = parse_double(coeff, "pauli coefficient");
  }

  i = first_pauli;
  while (i < body.size()) {
    while (i < body.size() && std::isspace(static_cast<unsigned char>(body[i]))) {
      ++i;
    }
    if (i >= body.size()) break;
    const char c = static_cast<char>(std::toupper(body[i]));
    check(c == 'X' || c == 'Y' || c == 'Z',
          std::string("parse_pauli_string: expected X/Y/Z, got '") + body[i] + "'");
    ++i;
    std::size_t j = i;
    while (j < body.size() && std::isdigit(static_cast<unsigned char>(body[j]))) {
      ++j;
    }
    check(j > i, "parse_pauli_string: operator without qubit index");
    const qubit_t q =
        static_cast<qubit_t>(parse_uint(body.substr(i, j - i), "pauli qubit"));
    p.terms.push_back(
        {q, c == 'X' ? Pauli::kX : c == 'Y' ? Pauli::kY : Pauli::kZ});
    i = j;
  }
  return p;
}

CMatrix to_dense(const Observable& o, unsigned num_qubits) {
  check(num_qubits <= 10, "to_dense: too many qubits");
  const std::size_t dim = pow2(num_qubits);
  CMatrix out(dim);

  static const cplx64 kX[4] = {0, 1, 1, 0};
  static const cplx64 kY[4] = {0, {0, -1}, {0, 1}, 0};
  static const cplx64 kZ[4] = {1, 0, 0, -1};

  for (const auto& p : o.strings) {
    p.validate(num_qubits);
    CMatrix term = CMatrix::identity(dim);
    for (const auto& t : p.terms) {
      const cplx64* m = t.op == Pauli::kX ? kX : t.op == Pauli::kY ? kY : kZ;
      term.compose_on_qubits(CMatrix(2, {m[0], m[1], m[2], m[3]}), {t.qubit});
    }
    for (std::size_t k = 0; k < out.data().size(); ++k) {
      out.data()[k] += p.coefficient * term.data()[k];
    }
  }
  return out;
}

}  // namespace qhip::obs
