// Gate fusion transpiler (qsim BasicGateFuser equivalent).
//
// Fusion combines adjacent gates into larger unitaries before simulation:
// gates acting on the same qubit compose by matrix product, gates acting in
// parallel on different qubits compose by tensor product (paper Figure 5).
// The single knob is the maximum number of qubits a fused gate may span —
// the x-axis of the paper's Figures 7-9 ("maximum number of fused gates").
//
// Algorithm: greedy time-ordered clustering. Open fusion blocks have
// pairwise-disjoint qubit sets. Each incoming gate either merges into the
// union of the blocks it touches (when the union stays within the limit) or
// closes those blocks and starts a new one. Closed blocks are emitted in
// close order, which preserves program order per qubit; measurements act as
// barriers on their qubits. The fused matrix is accumulated left-to-right
// with CMatrix::compose_on_qubits, so the expanded sparse matrix of
// Figure 4 is never materialized.
#pragma once

#include <cstdint>
#include <map>

#include "src/core/circuit.h"

namespace qhip {

struct FusionOptions {
  // Maximum qubits per fused gate; 1 disables multi-qubit fusion entirely
  // (every gate is still normalized). Paper sweeps 2..6, optimum 4.
  unsigned max_fused_qubits = 2;

  // Moments a fusion block may stay open after its last absorbed gate.
  // qsim's BasicGateFuser grows clusters along a bounded temporal frontier
  // rather than globally; this window reproduces that behaviour (a global
  // clusterer would collapse a deep circuit into a handful of maximal-width
  // gates, which real fusers do not do). 0 = unlimited.
  unsigned window_moments = 4;

  // The options are part of the fused-circuit cache key in src/engine: two
  // fuse_circuit calls with equal inputs and equal options are
  // interchangeable.
  friend bool operator==(const FusionOptions&, const FusionOptions&) = default;
};

struct FusionStats {
  std::size_t input_gates = 0;
  std::size_t output_gates = 0;
  // Histogram: fused gate qubit count -> number of fused gates emitted.
  std::map<unsigned, std::size_t> width_histogram;
  double seconds = 0;  // transpile wall time (paper: < 2% of total)

  double mean_width() const;
};

struct FusionResult {
  Circuit circuit;  // fused circuit; gate times renumbered sequentially
  FusionStats stats;
};

// Fuses `in` under `opt`. Controlled gates are folded into plain unitaries
// first (expand_controls); measurement gates pass through as barriers.
// The result satisfies: circuit_unitary(out) == circuit_unitary(in) up to
// floating-point error (property-tested).
FusionResult fuse_circuit(const Circuit& in, const FusionOptions& opt);

}  // namespace qhip
