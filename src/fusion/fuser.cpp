#include "src/fusion/fuser.h"

#include <algorithm>
#include <list>

#include "src/base/bits.h"
#include "src/base/error.h"
#include "src/base/timer.h"

namespace qhip {

double FusionStats::mean_width() const {
  std::size_t total = 0, count = 0;
  for (const auto& [w, n] : width_histogram) {
    total += static_cast<std::size_t>(w) * n;
    count += n;
  }
  return count == 0 ? 0.0 : static_cast<double>(total) / static_cast<double>(count);
}

namespace {

// An open fusion block: sorted qubit set + accumulated matrix over it.
struct Block {
  std::vector<qubit_t> qubits;  // ascending
  CMatrix matrix;               // dim 2^qubits.size()
  unsigned birth_time = 0;      // moment of the first absorbed gate
};

bool intersects(const std::vector<qubit_t>& a, const std::vector<qubit_t>& b) {
  // Both sorted; linear merge scan.
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) return true;
    if (a[i] < b[j]) ++i; else ++j;
  }
  return false;
}

std::vector<qubit_t> set_union(const std::vector<qubit_t>& a,
                               const std::vector<qubit_t>& b) {
  std::vector<qubit_t> u;
  u.reserve(a.size() + b.size());
  std::set_union(a.begin(), a.end(), b.begin(), b.end(), std::back_inserter(u));
  return u;
}

// Positions of `sub` within `super` (both sorted, sub ⊆ super).
std::vector<unsigned> positions_in(const std::vector<qubit_t>& sub,
                                   const std::vector<qubit_t>& super) {
  std::vector<unsigned> pos(sub.size());
  for (std::size_t j = 0; j < sub.size(); ++j) {
    const auto it = std::lower_bound(super.begin(), super.end(), sub[j]);
    pos[j] = static_cast<unsigned>(it - super.begin());
  }
  return pos;
}

class Fuser {
 public:
  explicit Fuser(const FusionOptions& opt, unsigned num_qubits)
      : opt_(opt) {
    out_.num_qubits = num_qubits;
  }

  void add(const Gate& gate_in) {
    ++stats_.input_gates;
    close_stale(gate_in.time);
    if (gate_in.is_measurement()) {
      Gate m = normalized(gate_in);
      close_touching(m.qubits);
      m.time = next_time_++;
      out_.gates.push_back(std::move(m));
      return;
    }
    const Gate g =
        normalized(gate_in.controls.empty() ? gate_in : expand_controls(gate_in));

    if (g.num_targets() > opt_.max_fused_qubits) {
      // Wider than the fusion limit: passes through as its own block.
      close_touching(g.qubits);
      emit(Block{g.qubits, g.matrix, g.time});
      return;
    }

    // Gather open blocks the gate touches and the merged qubit set.
    std::vector<std::list<Block>::iterator> touched;
    std::vector<qubit_t> merged = g.qubits;
    for (auto it = open_.begin(); it != open_.end(); ++it) {
      if (intersects(it->qubits, g.qubits)) {
        touched.push_back(it);
        merged = set_union(merged, it->qubits);
      }
    }

    if (merged.size() > opt_.max_fused_qubits) {
      // Cannot grow: close every touched block, then start fresh.
      for (auto it : touched) {
        emit(std::move(*it));
        open_.erase(it);
      }
      open_.push_back(Block{g.qubits, g.matrix, g.time});
      return;
    }

    // Merge the touched blocks and the gate into one block over `merged`.
    // The merged block inherits the oldest constituent's birth moment so
    // the fusion window bounds the temporal span of every fused gate.
    Block nb;
    nb.qubits = merged;
    nb.matrix = CMatrix::identity(pow2(static_cast<unsigned>(merged.size())));
    nb.birth_time = g.time;
    for (auto it : touched) {
      nb.birth_time = std::min(nb.birth_time, it->birth_time);
      nb.matrix.compose_on_qubits(it->matrix, positions_in(it->qubits, merged));
      open_.erase(it);
    }
    nb.matrix.compose_on_qubits(g.matrix, positions_in(g.qubits, merged));
    open_.push_back(std::move(nb));
  }

  FusionResult finish() {
    for (auto& b : open_) emit(std::move(b));
    open_.clear();
    FusionResult r;
    r.circuit = std::move(out_);
    r.stats = stats_;
    return r;
  }

 private:
  // Emits blocks that opened more than the fusion window ago: qsim's fuser
  // grows clusters along a bounded temporal frontier, never globally.
  void close_stale(unsigned now) {
    if (opt_.window_moments == 0) return;
    for (auto it = open_.begin(); it != open_.end();) {
      if (now >= it->birth_time + opt_.window_moments) {
        emit(std::move(*it));
        it = open_.erase(it);
      } else {
        ++it;
      }
    }
  }

  void close_touching(const std::vector<qubit_t>& qubits) {
    for (auto it = open_.begin(); it != open_.end();) {
      if (intersects(it->qubits, qubits)) {
        emit(std::move(*it));
        it = open_.erase(it);
      } else {
        ++it;
      }
    }
  }

  void emit(Block b) {
    Gate g;
    g.name = "fused";
    g.time = next_time_++;
    g.qubits = std::move(b.qubits);
    g.matrix = std::move(b.matrix);
    ++stats_.width_histogram[g.num_targets()];
    ++stats_.output_gates;
    out_.gates.push_back(std::move(g));
  }

  FusionOptions opt_;
  Circuit out_;
  std::list<Block> open_;
  FusionStats stats_;
  unsigned next_time_ = 0;
};

}  // namespace

FusionResult fuse_circuit(const Circuit& in, const FusionOptions& opt) {
  check(opt.max_fused_qubits >= 1 && opt.max_fused_qubits <= 6,
        "fuse_circuit: max_fused_qubits must be in [1, 6]");
  Timer timer;
  Fuser fuser(opt, in.num_qubits);
  for (const auto& g : in.gates) fuser.add(g);
  FusionResult r = fuser.finish();
  // Count measurement pass-throughs in output_gates too.
  r.stats.output_gates = r.circuit.gates.size();
  r.stats.seconds = timer.seconds();
  return r;
}

}  // namespace qhip
