#include "src/serve/wire.h"

#include <utility>

#include "src/io/circuit_io.h"
#include "src/io/qasm.h"
#include "src/noise/channels.h"

namespace qhip::serve {

namespace {

using engine::RequestKind;
using engine::SimErrorCode;
using engine::SimRequest;
using engine::SimResult;

[[noreturn]] void malformed(const std::string& msg) {
  throw CodedError(ErrorCode::kMalformedInput, "wire: " + msg);
}

// The loaders and the observable parser throw plain qhip::Error; on the wire
// every parse failure is malformed input (already-coded errors — e.g. the
// loaders' own truncation checks — pass through with their code intact).
template <typename F>
auto rewrap(const std::string& ctx, F&& f) -> decltype(f()) {
  try {
    return f();
  } catch (const CodedError&) {
    throw;
  } catch (const Error& e) {
    malformed(ctx + ": " + e.what());
  }
}

// --- small field helpers ----------------------------------------------------

JsonPtr cplx_array(const std::vector<cplx64>& v) {
  JsonPtr arr = JsonValue::make_array();
  arr->items.reserve(2 * v.size());
  for (const cplx64& c : v) {
    arr->items.push_back(JsonValue::make_number(c.real()));
    arr->items.push_back(JsonValue::make_number(c.imag()));
  }
  return arr;
}

std::vector<cplx64> cplx_from(const JsonValue& v, const std::string& ctx) {
  const auto& items = v.as_array(ctx);
  if (items.size() % 2 != 0) malformed(ctx + ": odd interleaved re/im array");
  std::vector<cplx64> out(items.size() / 2);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = {items[2 * i]->as_double(ctx), items[2 * i + 1]->as_double(ctx)};
  }
  return out;
}

JsonPtr uint_array(const std::vector<index_t>& v) {
  JsonPtr arr = JsonValue::make_array();
  arr->items.reserve(v.size());
  for (index_t x : v) arr->items.push_back(JsonValue::make_uint(x));
  return arr;
}

std::vector<index_t> uints_from(const JsonValue& v, const std::string& ctx) {
  std::vector<index_t> out;
  for (const auto& e : v.as_array(ctx)) {
    out.push_back(static_cast<index_t>(e->as_uint(ctx)));
  }
  return out;
}

JsonPtr double_array(const std::vector<double>& v) {
  JsonPtr arr = JsonValue::make_array();
  arr->items.reserve(v.size());
  for (double x : v) arr->items.push_back(JsonValue::make_number(x));
  return arr;
}

std::vector<double> doubles_from(const JsonValue& v, const std::string& ctx) {
  std::vector<double> out;
  for (const auto& e : v.as_array(ctx)) out.push_back(e->as_double(ctx));
  return out;
}

// --- observables ------------------------------------------------------------

// Inverse of obs::parse_pauli_string for real-coefficient strings (the only
// kind the parser produces). Complex coefficients are not representable in
// the text grammar, so they are not representable on the wire either.
std::string pauli_to_text(const obs::PauliString& p) {
  if (p.coefficient.imag() != 0) {
    malformed("observable coefficients must be real on the wire");
  }
  std::string s = json_double(p.coefficient.real());
  if (!p.terms.empty()) s += " *";
  for (const auto& t : p.terms) {
    s += ' ';
    s += t.op == obs::Pauli::kX ? 'X' : t.op == obs::Pauli::kY ? 'Y' : 'Z';
    s += std::to_string(t.qubit);
  }
  return s;
}

// --- noise channels ---------------------------------------------------------

// Full Kraus form: bit-exact and closed under every channel the noise
// library can build. {"channel": name, "rate": r} is accepted on decode as
// client-side sugar for the standard 1-qubit channels.
JsonPtr noise_to_json(const noise::NoiseModel& m) {
  JsonPtr obj = JsonValue::make_object();
  obj->set("name", JsonValue::make_string(m.channel.name));
  JsonPtr ops = JsonValue::make_array();
  for (const CMatrix& k : m.channel.ops) {
    JsonPtr op = JsonValue::make_object();
    op->set("dim", JsonValue::make_uint(k.dim()));
    op->set("values", cplx_array(k.data()));
    ops->items.push_back(std::move(op));
  }
  obj->set("ops", std::move(ops));
  return obj;
}

noise::KrausChannel named_channel(const std::string& name, double rate) {
  if (name == "depolarizing") return noise::depolarizing(rate);
  if (name == "bitflip") return noise::bit_flip(rate);
  if (name == "phaseflip") return noise::phase_flip(rate);
  if (name == "ampdamp") return noise::amplitude_damping(rate);
  if (name == "phasedamp") return noise::phase_damping(rate);
  malformed("unknown noise channel '" + name + "'");
}

noise::NoiseModel noise_from(const JsonValue& v) {
  noise::NoiseModel m;
  if (const JsonValue* ch = v.find("channel")) {
    const JsonValue* rate = v.find("rate");
    if (!rate) malformed("noise: named channel needs a \"rate\"");
    m.channel = rewrap("noise", [&] {
      return named_channel(ch->as_string("noise.channel"),
                           rate->as_double("noise.rate"));
    });
    return m;
  }
  const JsonValue* ops = v.find("ops");
  if (!ops) malformed("noise: need \"ops\" or \"channel\"+\"rate\"");
  if (const JsonValue* name = v.find("name")) {
    m.channel.name = name->as_string("noise.name");
  }
  for (const auto& op : ops->as_array("noise.ops")) {
    const JsonValue* dim = op->find("dim");
    const JsonValue* values = op->find("values");
    if (!dim || !values) malformed("noise.ops: each op needs dim + values");
    const auto d = static_cast<unsigned>(dim->as_uint("noise.ops.dim"));
    std::vector<cplx64> m2 = cplx_from(*values, "noise.ops.values");
    if (m2.size() != static_cast<std::size_t>(d) * d) {
      malformed("noise.ops: values size does not match dim");
    }
    m.channel.ops.emplace_back(d, std::move(m2));
  }
  return m;
}

// --- enums ------------------------------------------------------------------

RequestKind kind_from(const std::string& s) {
  if (s == "circuit") return RequestKind::kCircuit;
  if (s == "expectation") return RequestKind::kExpectation;
  if (s == "trajectory") return RequestKind::kTrajectory;
  malformed("unknown request kind '" + s + "'");
}

SimErrorCode code_from(const std::string& s) {
  if (s == "ok") return SimErrorCode::kOk;
  if (s == "rejected") return SimErrorCode::kRejected;
  if (s == "out-of-memory") return SimErrorCode::kOutOfMemory;
  if (s == "backend-fault") return SimErrorCode::kBackendFault;
  if (s == "deadline-exceeded") return SimErrorCode::kDeadlineExceeded;
  if (s == "internal") return SimErrorCode::kInternal;
  // Wire-level shed codes ("overloaded", "malformed-input") and anything a
  // newer server may add decode as structured rejections.
  return SimErrorCode::kRejected;
}

}  // namespace

std::string encode_request(const SimRequest& req, const std::string& id,
                           const std::string& client_corr) {
  JsonPtr o = JsonValue::make_object();
  o->set("op", JsonValue::make_string("simulate"));
  if (!id.empty()) o->set("id", JsonValue::make_string(id));
  if (!client_corr.empty()) {
    o->set("client_corr", JsonValue::make_string(client_corr));
  }
  o->set("kind", JsonValue::make_string(engine::to_string(req.kind)));
  o->set("format", JsonValue::make_string("qhip"));
  o->set("circuit", JsonValue::make_string(write_circuit_string(req.circuit)));
  o->set("backend", JsonValue::make_string(req.backend));
  o->set("precision", JsonValue::make_string(to_string(req.precision)));
  o->set("max_fused_qubits", JsonValue::make_uint(req.fusion.max_fused_qubits));
  o->set("window_moments", JsonValue::make_uint(req.fusion.window_moments));
  o->set("seed", JsonValue::make_uint(req.seed));
  if (req.num_samples) o->set("num_samples", JsonValue::make_uint(req.num_samples));
  if (!req.amplitude_indices.empty()) {
    o->set("amplitude_indices", uint_array(req.amplitude_indices));
  }
  if (req.want_state) o->set("want_state", JsonValue::make_bool(true));
  if (req.timeout_seconds > 0) {
    o->set("timeout_seconds", JsonValue::make_number(req.timeout_seconds));
  }
  if (req.bypass_result_cache) {
    o->set("bypass_result_cache", JsonValue::make_bool(true));
  }
  if (!req.observable.strings.empty()) {
    JsonPtr obs = JsonValue::make_array();
    for (const auto& p : req.observable.strings) {
      obs->items.push_back(JsonValue::make_string(pauli_to_text(p)));
    }
    o->set("observable", std::move(obs));
  }
  if (req.kind == RequestKind::kTrajectory) {
    o->set("noise", noise_to_json(req.noise));
    o->set("num_trajectories", JsonValue::make_uint(req.num_trajectories));
    if (req.trajectory_tolerance > 0) {
      o->set("trajectory_tolerance",
             JsonValue::make_number(req.trajectory_tolerance));
    }
  }
  return o->dump();
}

WireRequest decode_request(const std::string& line) {
  JsonPtr root = json_parse(line);
  if (root->type != JsonType::kObject) malformed("request must be an object");
  WireRequest out;
  if (const JsonValue* id = root->find("id")) out.id = id->as_string("id");
  if (const JsonValue* op = root->find("op")) out.op = op->as_string("op");
  if (const JsonValue* cc = root->find("client_corr")) {
    out.client_corr = cc->as_string("client_corr");
  }
  if (out.op == "ping" || out.op == "metrics" || out.op == "debug") return out;
  if (out.op != "simulate") malformed("unknown op '" + out.op + "'");

  SimRequest& q = out.sim;
  const JsonValue* circuit = root->find("circuit");
  if (!circuit) malformed("simulate request needs a \"circuit\"");
  std::string format = "qhip";
  if (const JsonValue* f = root->find("format")) format = f->as_string("format");
  if (format == "qhip") {
    q.circuit = rewrap("circuit", [&] {
      return read_circuit_string(circuit->as_string("circuit"));
    });
  } else if (format == "qasm") {
    q.circuit =
        rewrap("circuit", [&] { return read_qasm(circuit->as_string("circuit")); });
  } else {
    malformed("unknown circuit format '" + format + "'");
  }

  if (const JsonValue* v = root->find("kind")) q.kind = kind_from(v->as_string("kind"));
  if (const JsonValue* v = root->find("backend")) q.backend = v->as_string("backend");
  if (const JsonValue* v = root->find("precision")) {
    const std::string& p = v->as_string("precision");
    if (p == "single") q.precision = Precision::kSingle;
    else if (p == "double") q.precision = Precision::kDouble;
    else malformed("unknown precision '" + p + "'");
  }
  if (const JsonValue* v = root->find("max_fused_qubits")) {
    q.fusion.max_fused_qubits = static_cast<unsigned>(v->as_uint("max_fused_qubits"));
  }
  if (const JsonValue* v = root->find("window_moments")) {
    q.fusion.window_moments = static_cast<unsigned>(v->as_uint("window_moments"));
  }
  if (const JsonValue* v = root->find("seed")) q.seed = v->as_uint("seed");
  if (const JsonValue* v = root->find("num_samples")) {
    q.num_samples = static_cast<std::size_t>(v->as_uint("num_samples"));
  }
  if (const JsonValue* v = root->find("amplitude_indices")) {
    q.amplitude_indices = uints_from(*v, "amplitude_indices");
  }
  if (const JsonValue* v = root->find("want_state")) q.want_state = v->as_bool("want_state");
  if (const JsonValue* v = root->find("timeout_seconds")) {
    q.timeout_seconds = v->as_double("timeout_seconds");
  }
  if (const JsonValue* v = root->find("bypass_result_cache")) {
    q.bypass_result_cache = v->as_bool("bypass_result_cache");
  }
  if (const JsonValue* v = root->find("observable")) {
    for (const auto& s : v->as_array("observable")) {
      q.observable.strings.push_back(rewrap("observable", [&] {
        return obs::parse_pauli_string(s->as_string("observable"));
      }));
    }
  }
  if (const JsonValue* v = root->find("noise")) q.noise = noise_from(*v);
  if (const JsonValue* v = root->find("num_trajectories")) {
    q.num_trajectories = static_cast<std::size_t>(v->as_uint("num_trajectories"));
  }
  if (const JsonValue* v = root->find("trajectory_tolerance")) {
    q.trajectory_tolerance = v->as_double("trajectory_tolerance");
  }
  return out;
}

std::string encode_result(const SimResult& res, const std::string& id) {
  JsonPtr o = JsonValue::make_object();
  if (!id.empty()) o->set("id", JsonValue::make_string(id));
  o->set("ok", JsonValue::make_bool(res.ok));
  o->set("code", JsonValue::make_string(engine::to_string(res.code)));
  if (!res.error.empty()) o->set("error", JsonValue::make_string(res.error));
  o->set("kind", JsonValue::make_string(engine::to_string(res.kind)));
  o->set("request_id", JsonValue::make_uint(res.request_id));
  if (!res.measurements.empty()) o->set("measurements", uint_array(res.measurements));
  if (!res.samples.empty()) o->set("samples", uint_array(res.samples));
  if (!res.amplitudes.empty()) o->set("amplitudes", cplx_array(res.amplitudes));
  if (!res.state.empty()) o->set("state", cplx_array(res.state));
  if (!res.counters.empty()) {
    JsonPtr c = JsonValue::make_object();
    for (const auto& [k, v] : res.counters) c->set(k, JsonValue::make_number(v));
    o->set("counters", std::move(c));
  }
  if (res.expectation != cplx64{} || res.expectation_stderr != 0) {
    JsonPtr e = JsonValue::make_array();
    e->items.push_back(JsonValue::make_number(res.expectation.real()));
    e->items.push_back(JsonValue::make_number(res.expectation.imag()));
    o->set("expectation", std::move(e));
    o->set("expectation_stderr", JsonValue::make_number(res.expectation_stderr));
  }
  if (res.trajectories_run) {
    o->set("trajectories_run", JsonValue::make_uint(res.trajectories_run));
  }
  if (!res.distribution.empty()) {
    o->set("distribution", double_array(res.distribution));
  }
  o->set("fused_cache_hit", JsonValue::make_bool(res.fused_cache_hit));
  o->set("result_cache_hit", JsonValue::make_bool(res.result_cache_hit));
  o->set("backend_used", JsonValue::make_string(res.backend_used));
  o->set("attempts", JsonValue::make_uint(res.attempts));
  o->set("fallback_used", JsonValue::make_bool(res.fallback_used));
  o->set("fuse_seconds", JsonValue::make_number(res.fuse_seconds));
  o->set("queue_seconds", JsonValue::make_number(res.queue_seconds));
  o->set("run_seconds", JsonValue::make_number(res.run_seconds));
  o->set("sample_seconds", JsonValue::make_number(res.sample_seconds));
  o->set("total_seconds", JsonValue::make_number(res.total_seconds));
  return o->dump();
}

std::string encode_error(const std::string& code, const std::string& error,
                         const std::string& id) {
  JsonPtr o = JsonValue::make_object();
  if (!id.empty()) o->set("id", JsonValue::make_string(id));
  o->set("ok", JsonValue::make_bool(false));
  o->set("code", JsonValue::make_string(code));
  o->set("error", JsonValue::make_string(error));
  return o->dump();
}

std::string encode_pong(const std::string& id) {
  JsonPtr o = JsonValue::make_object();
  if (!id.empty()) o->set("id", JsonValue::make_string(id));
  o->set("ok", JsonValue::make_bool(true));
  o->set("code", JsonValue::make_string("ok"));
  o->set("pong", JsonValue::make_bool(true));
  return o->dump();
}

std::string encode_metrics(const std::string& prom_text, const std::string& id) {
  JsonPtr o = JsonValue::make_object();
  if (!id.empty()) o->set("id", JsonValue::make_string(id));
  o->set("ok", JsonValue::make_bool(true));
  o->set("code", JsonValue::make_string("ok"));
  o->set("text", JsonValue::make_string(prom_text));
  return o->dump();
}

SimResult decode_result(const std::string& line, std::string* id_out,
                        std::string* text_out) {
  JsonPtr root = json_parse(line);
  if (root->type != JsonType::kObject) malformed("response must be an object");
  SimResult res;
  if (id_out) {
    id_out->clear();
    if (const JsonValue* id = root->find("id")) *id_out = id->as_string("id");
  }
  if (text_out) {
    text_out->clear();
    if (const JsonValue* t = root->find("text")) *text_out = t->as_string("text");
  }
  if (const JsonValue* v = root->find("ok")) res.ok = v->as_bool("ok");
  if (const JsonValue* v = root->find("code")) {
    res.code = code_from(v->as_string("code"));
  }
  if (const JsonValue* v = root->find("error")) res.error = v->as_string("error");
  if (const JsonValue* v = root->find("kind")) res.kind = kind_from(v->as_string("kind"));
  if (const JsonValue* v = root->find("request_id")) {
    res.request_id = v->as_uint("request_id");
  }
  if (const JsonValue* v = root->find("measurements")) {
    res.measurements = uints_from(*v, "measurements");
  }
  if (const JsonValue* v = root->find("samples")) res.samples = uints_from(*v, "samples");
  if (const JsonValue* v = root->find("amplitudes")) {
    res.amplitudes = cplx_from(*v, "amplitudes");
  }
  if (const JsonValue* v = root->find("state")) res.state = cplx_from(*v, "state");
  if (const JsonValue* v = root->find("counters")) {
    for (const auto& [k, e] : v->members) {
      res.counters[k] = e->as_double("counters." + k);
    }
  }
  if (const JsonValue* v = root->find("expectation")) {
    const auto pair = cplx_from(*v, "expectation");
    if (pair.size() != 1) malformed("expectation must be one [re, im] pair");
    res.expectation = pair[0];
  }
  if (const JsonValue* v = root->find("expectation_stderr")) {
    res.expectation_stderr = v->as_double("expectation_stderr");
  }
  if (const JsonValue* v = root->find("trajectories_run")) {
    res.trajectories_run = static_cast<std::size_t>(v->as_uint("trajectories_run"));
  }
  if (const JsonValue* v = root->find("distribution")) {
    res.distribution = doubles_from(*v, "distribution");
  }
  if (const JsonValue* v = root->find("fused_cache_hit")) {
    res.fused_cache_hit = v->as_bool("fused_cache_hit");
  }
  if (const JsonValue* v = root->find("result_cache_hit")) {
    res.result_cache_hit = v->as_bool("result_cache_hit");
  }
  if (const JsonValue* v = root->find("backend_used")) {
    res.backend_used = v->as_string("backend_used");
  }
  if (const JsonValue* v = root->find("attempts")) {
    res.attempts = static_cast<unsigned>(v->as_uint("attempts"));
  }
  if (const JsonValue* v = root->find("fallback_used")) {
    res.fallback_used = v->as_bool("fallback_used");
  }
  if (const JsonValue* v = root->find("fuse_seconds")) res.fuse_seconds = v->as_double("fuse_seconds");
  if (const JsonValue* v = root->find("queue_seconds")) res.queue_seconds = v->as_double("queue_seconds");
  if (const JsonValue* v = root->find("run_seconds")) res.run_seconds = v->as_double("run_seconds");
  if (const JsonValue* v = root->find("sample_seconds")) res.sample_seconds = v->as_double("sample_seconds");
  if (const JsonValue* v = root->find("total_seconds")) res.total_seconds = v->as_double("total_seconds");
  return res;
}

}  // namespace qhip::serve
