// Blocking line-protocol client for qhip_serve (docs/SERVING.md).
//
// One Client is one TCP connection. call() is the synchronous convenience
// (one request, wait for its response); pipelined load drivers use
// send_line/recv_line directly and match responses to requests by the "id"
// tag they attached.
#pragma once

#include <string>

#include "src/engine/engine.h"

namespace qhip::serve {

class Client {
 public:
  // Connects immediately; throws qhip::Error on failure.
  Client(const std::string& host, unsigned short port);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client(Client&& o) noexcept;

  // Sends one message (appends the '\n' delimiter). Throws on a dead socket.
  void send_line(const std::string& line);

  // Blocks for the next LF-terminated response line (stripped of the LF).
  // Returns false on EOF — the server closed (e.g. finished draining).
  bool recv_line(std::string* line);

  // Synchronous request/response round trip.
  engine::SimResult call(const engine::SimRequest& req,
                         const std::string& id = {});

  // Liveness probe: {"op":"ping"} answered with pong.
  bool ping();

  // Engine metrics (Prometheus text) via {"op":"metrics"}.
  std::string metrics();

  // Half-closes the write side: the server sees EOF, finishes what is in
  // flight on this connection, flushes, and closes.
  void finish_writes();

  int fd() const { return fd_; }

 private:
  int fd_ = -1;
  std::string acc_;  // buffered bytes beyond the last returned line
};

}  // namespace qhip::serve
