#include "src/serve/json.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <utility>

namespace qhip::serve {

namespace {

[[noreturn]] void malformed(const std::string& msg) {
  throw CodedError(ErrorCode::kMalformedInput, "json: " + msg);
}

void escape_into(const std::string& s, std::string* out) {
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
}

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  JsonPtr parse() {
    JsonPtr v = value();
    skip_ws();
    if (pos_ != s_.size()) fail("trailing characters after JSON value");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& msg) const {
    malformed(msg + " at byte " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= s_.size()) fail("unexpected end of input");
    return s_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_lit(const char* lit) {
    std::size_t n = 0;
    while (lit[n]) ++n;
    if (s_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  JsonPtr value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') return JsonValue::make_string(string());
    if (c == 't') {
      if (!consume_lit("true")) fail("bad literal");
      return JsonValue::make_bool(true);
    }
    if (c == 'f') {
      if (!consume_lit("false")) fail("bad literal");
      return JsonValue::make_bool(false);
    }
    if (c == 'n') {
      if (!consume_lit("null")) fail("bad literal");
      return JsonValue::make_null();
    }
    return number();
  }

  JsonPtr object() {
    expect('{');
    JsonPtr obj = JsonValue::make_object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return obj;
    }
    while (true) {
      skip_ws();
      std::string key = string();
      skip_ws();
      expect(':');
      obj->set(std::move(key), value());
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        return obj;
      }
      fail("expected ',' or '}' in object");
    }
  }

  JsonPtr array() {
    expect('[');
    JsonPtr arr = JsonValue::make_array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return arr;
    }
    while (true) {
      arr->items.push_back(value());
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        return arr;
      }
      fail("expected ',' or ']' in array");
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= s_.size()) fail("unterminated string");
      const char c = s_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("raw control character in string");
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= s_.size()) fail("unterminated escape");
      const char e = s_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > s_.size()) fail("short \\u escape");
          unsigned v = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = s_[pos_++];
            v <<= 4;
            if (h >= '0' && h <= '9') v |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') v |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') v |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          // The wire schema is ASCII; encode BMP code points as UTF-8.
          if (v < 0x80) {
            out.push_back(static_cast<char>(v));
          } else if (v < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (v >> 6)));
            out.push_back(static_cast<char>(0x80 | (v & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (v >> 12)));
            out.push_back(static_cast<char>(0x80 | ((v >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (v & 0x3F)));
          }
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  JsonPtr number() {
    const std::size_t start = pos_;
    if (pos_ < s_.size() && s_[pos_] == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    const std::string tok = s_.substr(start, pos_ - start);
    // JSON forbids leading zeros ("01") — and strtod would accept them, so
    // check the grammar before handing the token over.
    const std::size_t d0 = tok[0] == '-' ? 1 : 0;
    if (tok.size() > d0 + 1 && tok[d0] == '0' &&
        std::isdigit(static_cast<unsigned char>(tok[d0 + 1]))) {
      pos_ = start;
      fail("malformed number '" + tok + "' (leading zero)");
    }
    char* end = nullptr;
    const double v = std::strtod(tok.c_str(), &end);
    if (end != tok.c_str() + tok.size()) {
      pos_ = start;
      fail("malformed number '" + tok + "'");
    }
    JsonPtr n = JsonValue::make_number(v);
    n->raw_number = tok;
    return n;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

void dump_into(const JsonValue& v, std::string* out) {
  switch (v.type) {
    case JsonType::kNull: *out += "null"; return;
    case JsonType::kBool: *out += v.boolean ? "true" : "false"; return;
    case JsonType::kNumber:
      *out += v.raw_number.empty() ? json_double(v.number) : v.raw_number;
      return;
    case JsonType::kString:
      out->push_back('"');
      escape_into(v.str, out);
      out->push_back('"');
      return;
    case JsonType::kArray: {
      out->push_back('[');
      bool first = true;
      for (const auto& e : v.items) {
        if (!first) out->push_back(',');
        first = false;
        dump_into(*e, out);
      }
      out->push_back(']');
      return;
    }
    case JsonType::kObject: {
      out->push_back('{');
      bool first = true;
      for (const auto& [k, e] : v.members) {
        if (!first) out->push_back(',');
        first = false;
        out->push_back('"');
        escape_into(k, out);
        *out += "\":";
        dump_into(*e, out);
      }
      out->push_back('}');
      return;
    }
  }
}

}  // namespace

JsonPtr JsonValue::make_null() { return std::make_shared<JsonValue>(); }

JsonPtr JsonValue::make_bool(bool b) {
  JsonPtr v = std::make_shared<JsonValue>();
  v->type = JsonType::kBool;
  v->boolean = b;
  return v;
}

JsonPtr JsonValue::make_number(double d) {
  JsonPtr v = std::make_shared<JsonValue>();
  v->type = JsonType::kNumber;
  v->number = d;
  return v;
}

JsonPtr JsonValue::make_uint(std::uint64_t u) {
  JsonPtr v = std::make_shared<JsonValue>();
  v->type = JsonType::kNumber;
  v->number = static_cast<double>(u);
  v->raw_number = std::to_string(u);  // exact on the wire even above 2^53
  return v;
}

JsonPtr JsonValue::make_string(std::string s) {
  JsonPtr v = std::make_shared<JsonValue>();
  v->type = JsonType::kString;
  v->str = std::move(s);
  return v;
}

JsonPtr JsonValue::make_array() {
  JsonPtr v = std::make_shared<JsonValue>();
  v->type = JsonType::kArray;
  return v;
}

JsonPtr JsonValue::make_object() {
  JsonPtr v = std::make_shared<JsonValue>();
  v->type = JsonType::kObject;
  return v;
}

void JsonValue::set(const std::string& key, JsonPtr v) {
  if (type != JsonType::kObject || !v) return;
  for (auto& [k, e] : members) {
    if (k == key) {
      e = std::move(v);
      return;
    }
  }
  members.emplace_back(key, std::move(v));
}

const JsonValue* JsonValue::find(const std::string& key) const {
  if (type != JsonType::kObject) return nullptr;
  for (const auto& [k, e] : members) {
    if (k == key) return e.get();
  }
  return nullptr;
}

bool JsonValue::as_bool(const std::string& ctx) const {
  if (type != JsonType::kBool) malformed(ctx + ": expected a boolean");
  return boolean;
}

double JsonValue::as_double(const std::string& ctx) const {
  if (type != JsonType::kNumber) malformed(ctx + ": expected a number");
  return number;
}

std::uint64_t JsonValue::as_uint(const std::string& ctx) const {
  if (type != JsonType::kNumber) malformed(ctx + ": expected a number");
  // Prefer the raw wire token: uint64 values above 2^53 are not exactly
  // representable as doubles, and seeds are uint64.
  const std::string& tok = raw_number.empty() ? std::to_string(number) : raw_number;
  // strtoull silently wraps negatives ("-1" -> 2^64-1), so insist on a pure
  // digit string before converting.
  if (tok.empty() || tok.find_first_not_of("0123456789") != std::string::npos) {
    malformed(ctx + ": expected an unsigned integer, got '" + tok + "'");
  }
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(tok.c_str(), &end, 10);
  if (errno != 0 || end != tok.c_str() + tok.size()) {
    malformed(ctx + ": expected an unsigned integer, got '" + tok + "'");
  }
  return static_cast<std::uint64_t>(v);
}

const std::string& JsonValue::as_string(const std::string& ctx) const {
  if (type != JsonType::kString) malformed(ctx + ": expected a string");
  return str;
}

const std::vector<JsonPtr>& JsonValue::as_array(const std::string& ctx) const {
  if (type != JsonType::kArray) malformed(ctx + ": expected an array");
  return items;
}

std::string JsonValue::dump() const {
  std::string out;
  dump_into(*this, &out);
  return out;
}

JsonPtr json_parse(const std::string& text) { return Parser(text).parse(); }

std::string json_double(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace qhip::serve
