// Minimal JSON for the qhip_serve wire protocol (docs/SERVING.md).
//
// Deliberately tiny — the wire format is newline-delimited JSON objects with
// a known schema, so this is a strict recursive-descent parser plus a
// writer, not a general DOM library. Two properties matter for serving:
//
//  * Numbers keep their RAW TOKEN alongside the parsed double. A 64-bit
//    seed like 9007199254740993 does not fit a double exactly; storing the
//    token lets wire.cpp re-parse it as uint64 losslessly.
//  * Doubles are written with enough digits ("%.17g") that strtod returns
//    the identical bit pattern — the serve tests assert END-TO-END
//    bit-identity between socket results and direct engine results.
//
// Malformed input throws CodedError(kMalformedInput) with a byte offset, so
// the server can reject a bad request line with a structured error instead
// of dying or mis-parsing.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/base/error.h"

namespace qhip::serve {

class JsonValue;
using JsonPtr = std::shared_ptr<JsonValue>;

enum class JsonType { kNull, kBool, kNumber, kString, kArray, kObject };

class JsonValue {
 public:
  JsonType type = JsonType::kNull;
  bool boolean = false;
  double number = 0;
  std::string raw_number;  // exact token as it appeared on the wire
  std::string str;
  std::vector<JsonPtr> items;
  // Object members in insertion order (the writer is deterministic, which
  // keeps golden tests and on-wire diffs stable).
  std::vector<std::pair<std::string, JsonPtr>> members;

  // --- construction -----------------------------------------------------
  static JsonPtr make_null();
  static JsonPtr make_bool(bool b);
  static JsonPtr make_number(double v);
  static JsonPtr make_uint(std::uint64_t v);   // exact, via raw token
  static JsonPtr make_string(std::string s);
  static JsonPtr make_array();
  static JsonPtr make_object();

  // Object helpers (no-ops unless type matches).
  void set(const std::string& key, JsonPtr v);
  // Returns nullptr when absent (callers treat absent as default).
  const JsonValue* find(const std::string& key) const;

  // --- typed getters; throw CodedError(kMalformedInput) on mismatch ------
  bool as_bool(const std::string& ctx) const;
  double as_double(const std::string& ctx) const;
  std::uint64_t as_uint(const std::string& ctx) const;  // re-parses raw token
  const std::string& as_string(const std::string& ctx) const;
  const std::vector<JsonPtr>& as_array(const std::string& ctx) const;

  // Serializes without any whitespace (one request/response per line; the
  // writer never emits '\n', which is the wire's message delimiter).
  std::string dump() const;
};

// Parses exactly one JSON value spanning the whole input (trailing
// non-whitespace is malformed). Throws CodedError(kMalformedInput).
JsonPtr json_parse(const std::string& text);

// "%.17g" — shortest form is overkill; 17 significant digits guarantee the
// double -> text -> double round trip is exact for every finite value.
std::string json_double(double v);

}  // namespace qhip::serve
