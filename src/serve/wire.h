// Wire protocol of qhip_serve: newline-delimited JSON mapping 1:1 onto
// engine::SimRequest / engine::SimResult (docs/SERVING.md).
//
// One message per line, LF-terminated, no embedded newlines (the JSON
// writer never emits one). Requests:
//
//   {"op":"simulate", "kind":"circuit"|"expectation"|"trajectory",
//    "circuit":"<text>", "format":"qhip"|"qasm", "backend":"cpu",
//    "precision":"single"|"double", "seed":1, "max_fused_qubits":2,
//    "window_moments":4, "num_samples":0, "amplitude_indices":[..],
//    "want_state":false, "timeout_seconds":0, "bypass_result_cache":false,
//    "observable":["1.5 * Z0 Z1", ...],
//    "noise":{"channel":"depolarizing","rate":0.01},
//    "num_trajectories":0, "trajectory_tolerance":0, "id":"<client tag>",
//    "client_corr":"<client-side trace corr id>"}
//   {"op":"ping"}            — liveness probe, answered inline
//   {"op":"metrics"}         — engine metrics as Prometheus text in "text"
//   {"op":"debug"}           — flight-recorder table + SLO status in "text"
//
// Responses echo "id" (when given) and carry the full SimResult: doubles
// with 17 significant digits and integers as exact tokens, so a decoded
// response compares EXPECT_EQ-equal with the direct engine result.
#pragma once

#include <string>

#include "src/engine/engine.h"
#include "src/serve/json.h"

namespace qhip::serve {

// Client-side tag threaded through a request/response pair. Separate from
// SimResult::request_id (the server-side correlation id): "id" is chosen by
// the client, "request_id" by the engine.
struct WireRequest {
  std::string id;          // optional client tag, echoed verbatim
  std::string op = "simulate";  // "simulate" | "ping" | "metrics" | "debug"
  engine::SimRequest sim;  // valid when op == "simulate"
  // Optional client-side trace correlation id. The server stamps it into
  // the request's "serve" span detail, so a client that also records spans
  // under this id can join its trace with the server-side span tree
  // (docs/SERVING.md).
  std::string client_corr;
};

// --- encode -----------------------------------------------------------------

// Encodes a simulate request as one JSON line (no trailing '\n').
// `client_corr`, when non-empty, rides along for server-side span joining.
std::string encode_request(const engine::SimRequest& req,
                           const std::string& id = {},
                           const std::string& client_corr = {});

// Encodes a SimResult response line; `id` echoes the client tag.
std::string encode_result(const engine::SimResult& res,
                          const std::string& id = {});

// Non-simulation responses.
std::string encode_error(const std::string& code, const std::string& error,
                         const std::string& id = {});
std::string encode_pong(const std::string& id = {});
std::string encode_metrics(const std::string& prom_text,
                           const std::string& id = {});

// --- decode -----------------------------------------------------------------

// Parses one request line. Throws CodedError(kMalformedInput) on anything
// malformed: bad JSON, unknown op/kind/fields, bad circuit text.
WireRequest decode_request(const std::string& line);

// Parses one response line back into a SimResult (exact round-trip of the
// encode above). `id_out`, when non-null, receives the echoed client tag.
// Responses to ping/metrics decode with ok=true and code kOk; the metrics
// text lands in `text_out` when non-null.
engine::SimResult decode_result(const std::string& line,
                                std::string* id_out = nullptr,
                                std::string* text_out = nullptr);

}  // namespace qhip::serve
