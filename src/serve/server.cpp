#include "src/serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <condition_variable>
#include <cstring>
#include <utility>

#include "src/base/error.h"
#include "src/base/timer.h"
#include "src/serve/wire.h"

namespace qhip::serve {

namespace {

// Requests are one JSON line; anything beyond this is not a sane request
// (the largest legitimate payloads — state vectors — flow server -> client).
constexpr std::size_t kMaxRequestLine = 64u << 20;

bool send_all(int fd, const char* data, std::size_t len) {
  while (len > 0) {
    const ssize_t n = ::send(fd, data, len, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;  // peer gone, send timeout, or socket shut down
    }
    data += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

std::string http_response(const char* status, const std::string& body,
                          const char* content_type = nullptr) {
  std::string r = "HTTP/1.0 ";
  r += status;
  r += "\r\nContent-Type: ";
  r += content_type ? content_type : "text/plain; version=0.0.4";
  r += "\r\nContent-Length: ";
  r += std::to_string(body.size());
  r += "\r\nConnection: close\r\n\r\n";
  r += body;
  return r;
}

}  // namespace

// Per-connection state. The reader admits requests, the writer flushes the
// outbox; completion callbacks (engine worker threads) only touch mu/outbox/
// inflight, never the socket.
struct Server::Conn {
  int fd = -1;
  std::mutex mu;
  std::condition_variable cv;
  std::deque<std::string> outbox;  // fully-formed response payloads
  std::size_t inflight = 0;        // admitted simulate requests outstanding
  bool read_done = false;  // reader exited: EOF, idle timeout, or drain
  bool dead = false;       // write side failed; stop queueing, drop outbox
  std::atomic<bool> reader_exited{false}, writer_exited{false};
  std::thread reader, writer;
};

Server::Server(engine::SimulationEngine& eng, ServerOptions opt)
    : engine_(eng), opt_(std::move(opt)) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  check(listen_fd_ >= 0, "serve: socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(opt_.port);
  if (::inet_pton(AF_INET, opt_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    throw Error("serve: bad listen address '" + opt_.host + "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 128) != 0) {
    const std::string why = std::strerror(errno);
    ::close(listen_fd_);
    throw Error("serve: cannot listen on " + opt_.host + ":" +
                std::to_string(opt_.port) + ": " + why);
  }
  socklen_t alen = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &alen);
  port_ = ntohs(addr.sin_port);
  acceptor_ = std::thread([this] { accept_loop(); });
}

Server::~Server() { shutdown(); }

Server::Stats Server::stats() const {
  std::lock_guard lk(stats_mu_);
  return stats_;
}

void Server::accept_loop() {
  while (!stopping_.load()) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int pr = ::poll(&pfd, 1, 200);
    if (stopping_.load()) break;
    // Reap finished connections so a long soak of short-lived clients does
    // not accumulate fds and exited threads until shutdown.
    {
      std::lock_guard lk(conns_mu_);
      for (auto it = conns_.begin(); it != conns_.end();) {
        auto& c = *it;
        if (c->reader_exited.load() && c->writer_exited.load()) {
          if (c->reader.joinable()) c->reader.join();
          if (c->writer.joinable()) c->writer.join();
          ::close(c->fd);
          it = conns_.erase(it);
        } else {
          ++it;
        }
      }
    }
    if (pr <= 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    // A writer stuck on a stalled peer must not wedge shutdown: bound each
    // send, then declare the connection dead on timeout.
    timeval tv{30, 0};
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
    auto conn = std::make_shared<Conn>();
    conn->fd = fd;
    {
      std::lock_guard lk(stats_mu_);
      ++stats_.connections;
    }
    {
      std::lock_guard lk(conns_mu_);
      conns_.push_back(conn);
    }
    conn->reader = std::thread([this, conn] { reader_loop(conn); });
    conn->writer = std::thread([this, conn] { writer_loop(conn); });
  }
}

void Server::enqueue(const std::shared_ptr<Conn>& conn, std::string payload,
                     bool count_response) {
  {
    std::lock_guard lk(conn->mu);
    if (!conn->dead) conn->outbox.push_back(std::move(payload));
  }
  if (count_response) {
    std::lock_guard lk(stats_mu_);
    ++stats_.responses;
  }
  conn->cv.notify_all();
}

void Server::handle_line(const std::shared_ptr<Conn>& conn,
                         const std::string& line) {
  WireRequest wr;
  try {
    wr = decode_request(line);
  } catch (const Error& e) {
    {
      std::lock_guard lk(stats_mu_);
      ++stats_.malformed;
    }
    enqueue(conn, encode_error("malformed-input", e.what()) + "\n");
    return;
  }
  if (wr.op == "ping") {
    enqueue(conn, encode_pong(wr.id) + "\n");
    return;
  }
  if (wr.op == "metrics") {
    enqueue(conn, encode_metrics(engine_.metrics().to_prom_text(), wr.id) + "\n");
    return;
  }
  if (wr.op == "debug") {
    // Flight-recorder request table + SLO watchdog status, answered inline
    // like metrics (no engine round-trip, safe during incidents).
    enqueue(conn, encode_metrics(engine_.debug_text(), wr.id) + "\n");
    return;
  }

  // Admission: shed instead of queueing beyond the per-connection bound.
  bool shed = false;
  {
    std::lock_guard lk(conn->mu);
    if (conn->inflight >= opt_.max_inflight_per_conn) {
      shed = true;
    } else {
      ++conn->inflight;
    }
  }
  if (shed) {
    {
      std::lock_guard lk(stats_mu_);
      ++stats_.shed;
    }
    enqueue(conn, encode_error("overloaded",
                               "connection has " +
                                   std::to_string(opt_.max_inflight_per_conn) +
                                   " requests in flight",
                               wr.id) +
                      "\n");
    return;
  }
  {
    std::lock_guard lk(stats_mu_);
    ++stats_.requests;
  }
  const std::uint64_t t0 = Timer::now_micros();
  const std::string tag = wr.id;
  const std::string client_corr = wr.client_corr;
  // The callback may run on an engine worker or inline (synchronous
  // rejection during drain); both paths only enqueue.
  engine_.submit(std::move(wr.sim),
                 [this, conn, tag, t0, client_corr](engine::SimResult res) {
                   if (opt_.tracer) {
                     std::string detail =
                         res.ok ? "served" : to_string(res.code);
                     if (!client_corr.empty()) {
                       // Joins the server-side span tree with the client's
                       // own trace (docs/SERVING.md).
                       detail += " client_corr=" + client_corr;
                     }
                     opt_.tracer->record(
                         "serve", TraceKind::kSpan, t0,
                         Timer::now_micros() - t0, span_lane(res.request_id),
                         0, res.request_id, std::move(detail));
                   }
                   std::string out = encode_result(res, tag) + "\n";
                   {
                     std::lock_guard lk(conn->mu);
                     --conn->inflight;
                   }
                   enqueue(conn, std::move(out));
                 });
}

void Server::reader_loop(const std::shared_ptr<Conn>& conn) {
  std::string acc;
  const std::size_t high_water = opt_.max_inflight_per_conn + 16;
  char buf[64 * 1024];
  bool http = false;
  double idle_seconds = 0;

  // Consumes every complete line in `acc`; returns false once the
  // connection switched to one-shot HTTP mode (stop reading).
  auto drain_lines = [&]() -> bool {
    std::size_t start = 0;
    for (std::size_t nl = acc.find('\n', start); nl != std::string::npos;
         nl = acc.find('\n', start)) {
      std::string line = acc.substr(start, nl - start);
      start = nl + 1;
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;
      if (line.rfind("GET ", 0) == 0) {
        // Plaintext scrape endpoints: answer the one request, then close
        // (HTTP/1.0 semantics; remaining header bytes are discarded).
        std::string path = line.substr(4);
        if (const auto sp = path.find(' '); sp != std::string::npos) {
          path.resize(sp);
        }
        if (path == "/metrics") {
          enqueue(conn,
                  http_response("200 OK", engine_.metrics().to_prom_text()));
        } else if (path == "/debug/requests") {
          enqueue(conn, http_response("200 OK", engine_.debug_text()));
        } else if (path == "/debug/snapshot") {
          // Returns the flight-recorder snapshot JSON; when the engine has a
          // snapshot directory configured, the same snapshot is also written
          // to disk (reason "debug-get").
          if (const auto* rec = engine_.flight_recorder()) {
            engine_.trigger_snapshot("debug-get");
            enqueue(conn, http_response("200 OK",
                                        rec->snapshot_json("debug-get"),
                                        "application/json"));
          } else {
            enqueue(conn, http_response("404 Not Found",
                                        "flight recorder disabled\n"));
          }
        } else {
          enqueue(conn,
                  http_response(
                      "404 Not Found",
                      "routes: /metrics /debug/requests /debug/snapshot\n"));
        }
        acc.clear();
        return false;
      }
      handle_line(conn, line);
    }
    acc.erase(0, start);
    return true;
  };

  while (!http && !stopping_.load()) {
    // Backpressure: stop consuming request bytes while the client is not
    // draining its responses (bounds outbox memory; TCP throttles the peer).
    {
      std::unique_lock lk(conn->mu);
      conn->cv.wait(lk, [&] {
        return conn->outbox.size() <= high_water || conn->dead ||
               stopping_.load();
      });
      if (conn->dead) break;
    }
    if (stopping_.load()) break;
    // Short poll slices so drain requests are observed promptly and the
    // idle read-deadline accumulates between them.
    pollfd pfd{conn->fd, POLLIN, 0};
    const int pr = ::poll(&pfd, 1, 200);
    if (pr == 0) {
      idle_seconds += 0.2;
      if (opt_.read_timeout_seconds > 0 &&
          idle_seconds >= opt_.read_timeout_seconds) {
        // Read deadline: drop connections idling with nothing outstanding.
        std::lock_guard lk(conn->mu);
        if (conn->inflight == 0 && conn->outbox.empty()) break;
      }
      continue;
    }
    if (pr < 0) {
      if (errno == EINTR) continue;
      break;
    }
    const ssize_t n = ::recv(conn->fd, buf, sizeof(buf), 0);
    if (n == 0) break;  // EOF: client closed or half-closed its write side
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    idle_seconds = 0;
    acc.append(buf, static_cast<std::size_t>(n));
    if (acc.size() > kMaxRequestLine) {
      enqueue(conn, encode_error("malformed-input", "request line too long") + "\n");
      break;
    }
    http = !drain_lines();
  }

  if (stopping_.load() && !http && !conn->dead) {
    // Drain grace: requests fully sent before the drain began may still sit
    // in the socket buffer (or a hop away on localhost). Admit every
    // complete line that arrives until the connection goes quiet — the
    // engine's own drain then answers them (in-flight finishes, queued
    // fails with a structured error). Only a *partial* trailing line goes
    // unanswered, and its sender never finished sending it.
    for (;;) {
      pollfd pfd{conn->fd, POLLIN, 0};
      const int pr = ::poll(&pfd, 1, 50);
      if (pr <= 0) break;  // quiet for 50 ms (or error): done
      const ssize_t n = ::recv(conn->fd, buf, sizeof(buf), 0);
      if (n <= 0) break;
      acc.append(buf, static_cast<std::size_t>(n));
      if (acc.size() > kMaxRequestLine) break;
      if (!drain_lines()) break;
    }
  }

  {
    std::lock_guard lk(conn->mu);
    conn->read_done = true;
  }
  conn->cv.notify_all();
  conn->reader_exited.store(true);
}

void Server::writer_loop(const std::shared_ptr<Conn>& conn) {
  for (;;) {
    std::string payload;
    {
      std::unique_lock lk(conn->mu);
      conn->cv.wait(lk, [&] {
        return !conn->outbox.empty() || conn->dead ||
               (conn->read_done && conn->inflight == 0);
      });
      if (conn->dead) break;
      if (conn->outbox.empty()) {
        if (conn->read_done && conn->inflight == 0) break;  // fully drained
        continue;
      }
      payload = std::move(conn->outbox.front());
      conn->outbox.pop_front();
    }
    conn->cv.notify_all();  // reader may be parked on the high-water mark
    if (!send_all(conn->fd, payload.data(), payload.size())) {
      std::lock_guard lk(conn->mu);
      conn->dead = true;
      conn->outbox.clear();
      // Wake a reader blocked in poll/recv so it observes the death.
      ::shutdown(conn->fd, SHUT_RDWR);
      break;
    }
  }
  conn->cv.notify_all();
  ::shutdown(conn->fd, SHUT_WR);
  conn->writer_exited.store(true);
}

void Server::shutdown() {
  std::lock_guard shut_lk(shutdown_mu_);
  if (shut_down_) return;
  shut_down_ = true;
  stopping_.store(true);
  if (acceptor_.joinable()) acceptor_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }

  std::vector<std::shared_ptr<Conn>> conns;
  {
    std::lock_guard lk(conns_mu_);
    conns = conns_;
  }
  // Stop readers first (each finishes its drain-grace pass and admits the
  // requests already on the wire), then drain the engine: queued requests
  // fail with structured results, in-flight requests finish, and every
  // completion callback has returned when stop() does — so each
  // connection's outbox holds every response it is owed.
  for (const auto& c : conns) c->cv.notify_all();
  for (const auto& c : conns) {
    if (c->reader.joinable()) c->reader.join();
  }
  engine_.stop();
  for (const auto& c : conns) {
    c->cv.notify_all();
    if (c->writer.joinable()) c->writer.join();
    ::close(c->fd);
  }
  {
    std::lock_guard lk(conns_mu_);
    conns_.clear();
  }
}

}  // namespace qhip::serve
