// qhip_serve's TCP front-end over SimulationEngine (docs/SERVING.md).
//
// One Server owns one engine reference and one listening socket. Each
// accepted connection gets a reader thread (parse + admit) and a writer
// thread (flush responses); completed requests are delivered through the
// engine's callback-style submit, so no thread parks per pending request.
//
// Flow control (never buffer unboundedly):
//  * Admission sheds: a connection may have at most max_inflight_per_conn
//    simulate requests outstanding; beyond that the server answers
//    immediately with code "overloaded" instead of queueing.
//  * Write backpressure: the reader stops consuming request bytes while the
//    connection's outbox is above its high-water mark, so a client that
//    does not read responses is eventually throttled by TCP itself.
//
// Graceful drain: shutdown() stops accepting, drains the engine (queued
// requests fail with structured kRejected results, in-flight requests
// finish), flushes every connection's remaining responses, then closes.
// Every admitted request is answered exactly once — the CI soak asserts
// zero dropped in-flight responses across a mid-soak SIGTERM.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/engine/engine.h"
#include "src/prof/trace.h"

namespace qhip::serve {

struct ServerOptions {
  std::string host = "127.0.0.1";
  unsigned short port = 0;  // 0 = ephemeral; read the bound port via port()
  // Outstanding simulate requests per connection before shedding with
  // "overloaded" (the per-connection writer queue bound).
  std::size_t max_inflight_per_conn = 64;
  // Per-connection read deadline: an idle connection (no request bytes, no
  // responses pending) is closed after this long. <= 0 disables.
  double read_timeout_seconds = 300;
  // Server-side request spans ("serve" lane) join the engine's request
  // trees when this is the tracer the engine was built with.
  Tracer* tracer = nullptr;
};

class Server {
 public:
  // Binds and starts accepting immediately; throws qhip::Error when the
  // socket cannot be bound.
  Server(engine::SimulationEngine& eng, ServerOptions opt = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // The bound TCP port (resolves option port 0).
  unsigned short port() const { return port_; }

  // Graceful drain; idempotent and safe to call from a signal-handling
  // thread. Returns once every admitted request has been answered and
  // flushed and all server threads are joined.
  void shutdown();

  struct Stats {
    std::uint64_t connections = 0;  // accepted
    std::uint64_t requests = 0;     // simulate requests admitted
    std::uint64_t responses = 0;    // response lines queued for write
    std::uint64_t shed = 0;         // simulate requests answered "overloaded"
    std::uint64_t malformed = 0;    // request lines rejected at parse
  };
  Stats stats() const;

 private:
  struct Conn;

  void accept_loop();
  void reader_loop(const std::shared_ptr<Conn>& conn);
  void writer_loop(const std::shared_ptr<Conn>& conn);
  void handle_line(const std::shared_ptr<Conn>& conn, const std::string& line);
  // Queues one response payload (raw bytes, '\n' already included for JSON
  // lines) and wakes the writer.
  void enqueue(const std::shared_ptr<Conn>& conn, std::string payload,
               bool count_response = true);

  engine::SimulationEngine& engine_;
  ServerOptions opt_;
  unsigned short port_ = 0;
  int listen_fd_ = -1;
  std::atomic<bool> stopping_{false};
  std::thread acceptor_;

  mutable std::mutex conns_mu_;
  std::vector<std::shared_ptr<Conn>> conns_;

  mutable std::mutex stats_mu_;
  Stats stats_;
  // Serializes shutdown() callers (signal thread vs destructor).
  std::mutex shutdown_mu_;
  bool shut_down_ = false;
};

}  // namespace qhip::serve
