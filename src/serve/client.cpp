#include "src/serve/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "src/base/error.h"
#include "src/serve/wire.h"

namespace qhip::serve {

Client::Client(const std::string& host, unsigned short port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  check(fd_ >= 0, "client: socket() failed");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd_);
    fd_ = -1;
    throw Error("client: bad address '" + host + "'");
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string why = std::strerror(errno);
    ::close(fd_);
    fd_ = -1;
    throw Error("client: cannot connect to " + host + ":" +
                std::to_string(port) + ": " + why);
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

Client::Client(Client&& o) noexcept : fd_(o.fd_), acc_(std::move(o.acc_)) {
  o.fd_ = -1;
}

void Client::send_line(const std::string& line) {
  std::string payload = line;
  payload.push_back('\n');
  const char* data = payload.data();
  std::size_t len = payload.size();
  while (len > 0) {
    const ssize_t n = ::send(fd_, data, len, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw Error(std::string("client: send failed: ") + std::strerror(errno));
    }
    data += n;
    len -= static_cast<std::size_t>(n);
  }
}

bool Client::recv_line(std::string* line) {
  for (;;) {
    const std::size_t nl = acc_.find('\n');
    if (nl != std::string::npos) {
      *line = acc_.substr(0, nl);
      acc_.erase(0, nl + 1);
      if (!line->empty() && line->back() == '\r') line->pop_back();
      return true;
    }
    char buf[64 * 1024];
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n == 0) return false;
    if (n < 0) {
      if (errno == EINTR) continue;
      throw Error(std::string("client: recv failed: ") + std::strerror(errno));
    }
    acc_.append(buf, static_cast<std::size_t>(n));
  }
}

engine::SimResult Client::call(const engine::SimRequest& req,
                               const std::string& id) {
  send_line(encode_request(req, id));
  std::string line;
  check(recv_line(&line), "client: server closed before responding");
  return decode_result(line);
}

bool Client::ping() {
  send_line("{\"op\":\"ping\"}");
  std::string line;
  if (!recv_line(&line)) return false;
  const engine::SimResult res = decode_result(line);
  return res.ok;
}

std::string Client::metrics() {
  send_line("{\"op\":\"metrics\"}");
  std::string line;
  check(recv_line(&line), "client: server closed before metrics response");
  std::string text;
  decode_result(line, nullptr, &text);
  return text;
}

void Client::finish_writes() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
}

}  // namespace qhip::serve
