// Kraus channels for noisy simulation.
//
// qsim pairs its state-vector simulator with a quantum-trajectory method
// for noisy circuits (paper §2.1); a noise channel is a set of Kraus
// operators {K_i} with sum_i K_i^dagger K_i = I. A trajectory applies one
// K_i per channel invocation, chosen with the Born probability
// p_i = ||K_i |psi>||^2, then renormalizes — averaging trajectories
// reproduces the density-matrix evolution without ever storing a density
// matrix.
#pragma once

#include <string>
#include <vector>

#include "src/core/matrix.h"

namespace qhip::noise {

struct KrausChannel {
  std::string name;
  std::vector<CMatrix> ops;  // all same dimension (2 for 1-qubit channels)

  unsigned num_qubits() const;

  // || sum K_i^dagger K_i - I ||_max; a trace-preserving channel gives ~0.
  double completeness_error() const;
  bool is_complete(double tol = 1e-10) const;

  // True when every Kraus operator is proportional to a unitary (selection
  // probabilities are then state-independent).
  bool is_mixed_unitary(double tol = 1e-10) const;

  // Throws unless ops are non-empty, uniform in dimension, and complete.
  void validate() const;
};

// --- standard 1-qubit channels ----------------------------------------------

// With probability p, a uniformly random Pauli error (X, Y or Z each p/3).
KrausChannel depolarizing(double p);

// X with probability p.
KrausChannel bit_flip(double p);

// Z with probability p.
KrausChannel phase_flip(double p);

// T1 decay: |1> relaxes to |0> with probability gamma.
KrausChannel amplitude_damping(double gamma);

// Pure dephasing with rate gamma (T2 without T1).
KrausChannel phase_damping(double gamma);

}  // namespace qhip::noise
