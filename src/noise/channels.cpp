#include "src/noise/channels.h"

#include <cmath>

#include "src/base/error.h"

namespace qhip::noise {

unsigned KrausChannel::num_qubits() const {
  check(!ops.empty(), "KrausChannel: no operators");
  return ops.front().num_qubits();
}

double KrausChannel::completeness_error() const {
  check(!ops.empty(), "KrausChannel: no operators");
  const std::size_t dim = ops.front().dim();
  CMatrix sum(dim);
  for (const auto& k : ops) {
    check(k.dim() == dim, "KrausChannel: operator dimension mismatch");
    const CMatrix kk = k.adjoint() * k;
    for (std::size_t i = 0; i < sum.data().size(); ++i) {
      sum.data()[i] += kk.data()[i];
    }
  }
  return sum.distance(CMatrix::identity(dim));
}

bool KrausChannel::is_complete(double tol) const {
  return completeness_error() <= tol;
}

bool KrausChannel::is_mixed_unitary(double tol) const {
  for (const auto& k : ops) {
    // K proportional to unitary <=> K^dagger K proportional to I.
    const CMatrix kk = k.adjoint() * k;
    const cplx64 scale = kk.at(0, 0);
    CMatrix scaled = CMatrix::identity(kk.dim());
    for (auto& v : scaled.data()) v *= scale;
    if (kk.distance(scaled) > tol) return false;
  }
  return true;
}

void KrausChannel::validate() const {
  check(!ops.empty(), "KrausChannel '" + name + "': no operators");
  const std::size_t dim = ops.front().dim();
  for (const auto& k : ops) {
    check(k.dim() == dim, "KrausChannel '" + name + "': dimension mismatch");
  }
  check(is_complete(1e-9),
        "KrausChannel '" + name + "': operators are not trace-preserving");
}

namespace {

CMatrix scaled(std::vector<cplx64> entries, double s) {
  for (auto& v : entries) v *= s;
  return CMatrix(2, std::move(entries));
}

}  // namespace

KrausChannel depolarizing(double p) {
  check(p >= 0 && p <= 1, "depolarizing: p out of [0, 1]");
  KrausChannel c;
  c.name = "depolarizing(" + std::to_string(p) + ")";
  c.ops.push_back(scaled({1, 0, 0, 1}, std::sqrt(1 - p)));
  c.ops.push_back(scaled({0, 1, 1, 0}, std::sqrt(p / 3)));
  c.ops.push_back(scaled({0, {0, -1}, {0, 1}, 0}, std::sqrt(p / 3)));
  c.ops.push_back(scaled({1, 0, 0, -1}, std::sqrt(p / 3)));
  return c;
}

KrausChannel bit_flip(double p) {
  check(p >= 0 && p <= 1, "bit_flip: p out of [0, 1]");
  KrausChannel c;
  c.name = "bit_flip(" + std::to_string(p) + ")";
  c.ops.push_back(scaled({1, 0, 0, 1}, std::sqrt(1 - p)));
  c.ops.push_back(scaled({0, 1, 1, 0}, std::sqrt(p)));
  return c;
}

KrausChannel phase_flip(double p) {
  check(p >= 0 && p <= 1, "phase_flip: p out of [0, 1]");
  KrausChannel c;
  c.name = "phase_flip(" + std::to_string(p) + ")";
  c.ops.push_back(scaled({1, 0, 0, 1}, std::sqrt(1 - p)));
  c.ops.push_back(scaled({1, 0, 0, -1}, std::sqrt(p)));
  return c;
}

KrausChannel amplitude_damping(double gamma) {
  check(gamma >= 0 && gamma <= 1, "amplitude_damping: gamma out of [0, 1]");
  KrausChannel c;
  c.name = "amplitude_damping(" + std::to_string(gamma) + ")";
  c.ops.push_back(CMatrix(2, {1, 0, 0, std::sqrt(1 - gamma)}));
  c.ops.push_back(CMatrix(2, {0, std::sqrt(gamma), 0, 0}));
  return c;
}

KrausChannel phase_damping(double gamma) {
  check(gamma >= 0 && gamma <= 1, "phase_damping: gamma out of [0, 1]");
  KrausChannel c;
  c.name = "phase_damping(" + std::to_string(gamma) + ")";
  c.ops.push_back(CMatrix(2, {1, 0, 0, std::sqrt(1 - gamma)}));
  c.ops.push_back(CMatrix(2, {0, 0, 0, std::sqrt(gamma)}));
  return c;
}

}  // namespace qhip::noise
