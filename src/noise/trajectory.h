// Quantum-trajectory simulation of noisy circuits (qsim's qtrajectory
// equivalent, paper §2.1).
//
// One trajectory executes the ideal circuit with a noise channel applied
// to every qubit each gate touches: the Kraus operator is selected with
// its Born probability p_i = ||K_i psi||^2 (computed in a single streaming
// pass over the state, all operators at once), applied in place, and the
// state renormalized by 1/sqrt(p_i). Selection uses a Philox counter
// stream keyed on (seed, trajectory), so trajectories are independent and
// reproducible regardless of scheduling.
#pragma once

#include <cstdint>

#include "src/base/rng.h"
#include "src/core/circuit.h"
#include "src/noise/channels.h"
#include "src/simulator/apply.h"
#include "src/statespace/statevector.h"

namespace qhip::noise {

// Applies `channel` (1-qubit) to qubit `q`: selects a Kraus operator by
// Born probability using `u` in [0, 1), applies it and renormalizes.
// Returns the selected operator index.
template <typename FP>
std::size_t apply_channel(const KrausChannel& channel, qubit_t q,
                          StateVector<FP>& state, double u,
                          ThreadPool& pool = ThreadPool::shared()) {
  check(channel.num_qubits() == 1, "apply_channel: only 1-qubit channels");
  check(q < state.num_qubits(), "apply_channel: qubit out of range");
  const std::size_t nops = channel.ops.size();

  // One pass: p_i = sum over amplitude pairs |K_i (a0, a1)|^2.
  const index_t bit = pow2(q);
  const unsigned nt = pool.num_threads();
  std::vector<double> partial(nt * nops, 0.0);
  pool.parallel_ranges(state.size() >> 1, [&](unsigned rank, index_t b, index_t e) {
    double* acc = partial.data() + static_cast<std::size_t>(rank) * nops;
    for (index_t o = b; o < e; ++o) {
      const index_t lo = ((o >> q) << (q + 1)) | (o & (bit - 1));
      const cplx64 a0(state[lo].real(), state[lo].imag());
      const cplx64 a1(state[lo | bit].real(), state[lo | bit].imag());
      for (std::size_t i = 0; i < nops; ++i) {
        const auto& k = channel.ops[i];
        acc[i] += std::norm(k.at(0, 0) * a0 + k.at(0, 1) * a1) +
                  std::norm(k.at(1, 0) * a0 + k.at(1, 1) * a1);
      }
    }
  });
  std::vector<double> probs(nops, 0.0);
  for (unsigned r = 0; r < nt; ++r) {
    for (std::size_t i = 0; i < nops; ++i) {
      probs[i] += partial[static_cast<std::size_t>(r) * nops + i];
    }
  }

  // Select.
  std::size_t pick = nops - 1;
  double csum = 0;
  for (std::size_t i = 0; i < nops; ++i) {
    csum += probs[i];
    if (u < csum) {
      pick = i;
      break;
    }
  }
  check(probs[pick] > 1e-300, "apply_channel: selected zero-probability branch");

  // Apply K_pick / sqrt(p_pick) in place.
  Gate g;
  g.name = "kraus";
  g.qubits = {q};
  g.matrix = channel.ops[pick];
  const double inv = 1.0 / std::sqrt(probs[pick]);
  for (auto& v : g.matrix.data()) v *= inv;
  apply_gate_inplace(g, state, pool);
  return pick;
}

struct NoiseModel {
  KrausChannel channel;  // applied to each touched qubit after every gate
};

// Runs one trajectory of `circuit` under `model`; trajectory index selects
// the Philox stream.
template <typename FP>
StateVector<FP> run_trajectory(const Circuit& circuit, const NoiseModel& model,
                               std::uint64_t seed, std::uint64_t trajectory,
                               ThreadPool& pool = ThreadPool::shared()) {
  model.channel.validate();
  StateVector<FP> s(circuit.num_qubits);
  Philox rng(seed, 0xffff0000ull | trajectory);
  for (const auto& gate : circuit.gates) {
    check(!gate.is_measurement(), "run_trajectory: measurement unsupported");
    const Gate n = normalized(gate.controls.empty() ? gate : expand_controls(gate));
    apply_gate_inplace(n, s, pool);
    for (qubit_t q : n.qubits) {
      apply_channel(model.channel, q, s, rng.uniform(), pool);
    }
  }
  return s;
}

// Mean probability distribution over `num_trajectories` trajectories —
// the trajectory estimate of the noisy output distribution.
template <typename FP>
std::vector<double> trajectory_distribution(const Circuit& circuit,
                                            const NoiseModel& model,
                                            std::size_t num_trajectories,
                                            std::uint64_t seed,
                                            ThreadPool& pool = ThreadPool::shared()) {
  check(num_trajectories > 0, "trajectory_distribution: need trajectories");
  std::vector<double> dist(pow2(circuit.num_qubits), 0.0);
  for (std::size_t t = 0; t < num_trajectories; ++t) {
    const StateVector<FP> s =
        run_trajectory<FP>(circuit, model, seed, t, pool);
    for (index_t i = 0; i < s.size(); ++i) {
      dist[i] += std::norm(cplx64(s[i].real(), s[i].imag()));
    }
  }
  for (auto& v : dist) v /= static_cast<double>(num_trajectories);
  return dist;
}

}  // namespace qhip::noise
