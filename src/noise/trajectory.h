// Quantum-trajectory simulation of noisy circuits (qsim's qtrajectory
// equivalent, paper §2.1).
//
// One trajectory executes the ideal circuit with a noise channel applied
// to every qubit each gate touches: the Kraus operator is selected with
// its Born probability p_i = ||K_i psi||^2 (computed in a single streaming
// pass over the state, all operators at once), applied in place, and the
// state renormalized by 1/sqrt(p_i). Selection uses a Philox counter
// stream keyed on (seed, trajectory), so trajectories are independent and
// reproducible regardless of scheduling.
//
// Batch callers (the engine's trajectory fan-out, DESIGN.md §14) prepare
// the circuit once with normalize_circuit and run many trajectories via
// run_trajectory_prepared over a reused state buffer; the convenience
// run_trajectory wrapper below is bit-identical to that path.
#pragma once

#include <cstdint>

#include "src/base/deadline.h"
#include "src/base/rng.h"
#include "src/core/circuit.h"
#include "src/noise/channels.h"
#include "src/simulator/apply.h"
#include "src/statespace/statevector.h"

namespace qhip::noise {

// Applies `channel` (1-qubit) to qubit `q`: selects a Kraus operator by
// Born probability using `u` in [0, 1), applies it and renormalizes.
// Returns the selected operator index.
template <typename FP>
std::size_t apply_channel(const KrausChannel& channel, qubit_t q,
                          StateVector<FP>& state, double u,
                          ThreadPool& pool = ThreadPool::shared()) {
  check(channel.num_qubits() == 1, "apply_channel: only 1-qubit channels");
  check(q < state.num_qubits(), "apply_channel: qubit out of range");
  const std::size_t nops = channel.ops.size();

  // One pass: p_i = sum over amplitude pairs |K_i (a0, a1)|^2.
  const index_t bit = pow2(q);
  const unsigned nt = pool.num_threads();
  std::vector<double> partial(nt * nops, 0.0);
  pool.parallel_ranges(state.size() >> 1, [&](unsigned rank, index_t b, index_t e) {
    double* acc = partial.data() + static_cast<std::size_t>(rank) * nops;
    for (index_t o = b; o < e; ++o) {
      const index_t lo = ((o >> q) << (q + 1)) | (o & (bit - 1));
      const cplx64 a0(state[lo].real(), state[lo].imag());
      const cplx64 a1(state[lo | bit].real(), state[lo | bit].imag());
      for (std::size_t i = 0; i < nops; ++i) {
        const auto& k = channel.ops[i];
        acc[i] += std::norm(k.at(0, 0) * a0 + k.at(0, 1) * a1) +
                  std::norm(k.at(1, 0) * a0 + k.at(1, 1) * a1);
      }
    }
  });
  std::vector<double> probs(nops, 0.0);
  for (unsigned r = 0; r < nt; ++r) {
    for (std::size_t i = 0; i < nops; ++i) {
      probs[i] += partial[static_cast<std::size_t>(r) * nops + i];
    }
  }

  // Select on u * total rather than u: the Born weights are unnormalized
  // (their sum drifts from 1 with the state's accumulated rounding, and is
  // genuinely < 1 mid-drift even for exact CPTP channels), so comparing raw
  // u against the cumulative sum biases late operators and — when the total
  // lands below u — falls off the loop onto the last operator even if its
  // weight is zero. `total` accumulates in the same ascending order as the
  // selection scan, so the final cumulative sum equals it bit for bit and
  // u < 1 can only escape the loop through floating-point rounding.
  double total = 0;
  for (std::size_t i = 0; i < nops; ++i) total += probs[i];
  check(total > 1e-300, "apply_channel: state has vanishing norm");
  const double target = u * total;
  std::size_t pick = nops;
  double csum = 0;
  for (std::size_t i = 0; i < nops; ++i) {
    csum += probs[i];
    if (target < csum) {
      pick = i;
      break;
    }
  }
  if (pick == nops) {
    // u * total rounded up to the full sum: take the last operator that has
    // any weight (never a zero-probability branch).
    pick = nops - 1;
    while (pick > 0 && probs[pick] <= 1e-300) --pick;
  }
  check(probs[pick] > 1e-300, "apply_channel: selected zero-probability branch");

  // Apply K_pick / sqrt(p_pick) in place.
  Gate g;
  g.name = "kraus";
  g.qubits = {q};
  g.matrix = channel.ops[pick];
  const double inv = 1.0 / std::sqrt(probs[pick]);
  for (auto& v : g.matrix.data()) v *= inv;
  apply_gate_inplace(g, state, pool);
  return pick;
}

struct NoiseModel {
  KrausChannel channel;  // applied to each touched qubit after every gate
};

// Philox stream key for one trajectory. The key used to be
// 0xffff0000 | trajectory, which only separates the low 16 bits: trajectory
// 65536 OR-ed back onto trajectory 0's stream, silently duplicating
// trajectories in large batches. Addition is injective over the full 64-bit
// counter space and agrees with the old key for every trajectory < 65536
// (the added bits cannot carry into 0xffff0000), so existing seeds
// reproduce their results.
inline constexpr std::uint64_t trajectory_stream_key(std::uint64_t trajectory) {
  return 0xffff0000ull + trajectory;
}

// Runs one trajectory of an already-normalized circuit (normalize_circuit)
// into `state` (reset to |0...0> here), drawing channel selections from the
// Philox stream of (seed, trajectory). The deadline, when active, is
// checked between gates — batch serving aborts cooperatively mid-run.
// Sharing one prepared circuit across sub-runs is bit-identical to the
// run_trajectory wrapper below.
template <typename FP>
void run_trajectory_prepared(const Circuit& prepared, const NoiseModel& model,
                             std::uint64_t seed, std::uint64_t trajectory,
                             StateVector<FP>& state,
                             ThreadPool& pool = ThreadPool::shared(),
                             const Deadline& deadline = {}) {
  check(state.num_qubits() == prepared.num_qubits,
        "run_trajectory: state/circuit qubit mismatch");
  state.set_zero_state();
  Philox rng(seed, trajectory_stream_key(trajectory));
  for (const auto& gate : prepared.gates) {
    check(!gate.is_measurement(), "run_trajectory: measurement unsupported");
    deadline.check("run_trajectory");
    apply_gate_inplace(gate, state, pool);
    for (qubit_t q : gate.qubits) {
      apply_channel(model.channel, q, state, rng.uniform(), pool);
    }
  }
}

// Runs one trajectory of `circuit` under `model`; trajectory index selects
// the Philox stream.
template <typename FP>
StateVector<FP> run_trajectory(const Circuit& circuit, const NoiseModel& model,
                               std::uint64_t seed, std::uint64_t trajectory,
                               ThreadPool& pool = ThreadPool::shared()) {
  model.channel.validate();
  StateVector<FP> s(circuit.num_qubits);
  run_trajectory_prepared(normalize_circuit(circuit), model, seed, trajectory,
                          s, pool);
  return s;
}

// Mean probability distribution over `num_trajectories` trajectories —
// the trajectory estimate of the noisy output distribution.
template <typename FP>
std::vector<double> trajectory_distribution(const Circuit& circuit,
                                            const NoiseModel& model,
                                            std::size_t num_trajectories,
                                            std::uint64_t seed,
                                            ThreadPool& pool = ThreadPool::shared()) {
  check(num_trajectories > 0, "trajectory_distribution: need trajectories");
  model.channel.validate();
  const Circuit prepared = normalize_circuit(circuit);
  std::vector<double> dist(pow2(circuit.num_qubits), 0.0);
  StateVector<FP> s(circuit.num_qubits);
  for (std::size_t t = 0; t < num_trajectories; ++t) {
    run_trajectory_prepared<FP>(prepared, model, seed, t, s, pool);
    for (index_t i = 0; i < s.size(); ++i) {
      dist[i] += std::norm(cplx64(s[i].real(), s[i].imag()));
    }
  }
  for (auto& v : dist) v /= static_cast<double>(num_trajectories);
  return dist;
}

}  // namespace qhip::noise
