#include "src/engine/backend.h"

#include <array>
#include <optional>
#include <utility>

#include "src/base/error.h"
#include "src/base/strings.h"
#include "src/base/timer.h"
#include "src/dist/simulator_dist.h"
#include "src/hipsim/expectation_hip.h"
#include "src/hipsim/multi_gcd.h"
#include "src/vgpu/fault.h"
#include "src/hipsim/simulator_hip.h"
#include "src/simulator/simulator_cpu.h"
#include "src/vgpu/device.h"
#include "src/vgpu/device_props.h"

namespace qhip {

namespace {

template <typename FP>
std::vector<cplx64> state_as_cplx64(const StateVector<FP>& s) {
  std::vector<cplx64> out(s.size());
  for (index_t i = 0; i < s.size(); ++i) {
    out[i] = cplx64(s[i].real(), s[i].imag());
  }
  return out;
}

// Runs `fn` at scope exit: clears correlation ids on every path (a run that
// throws must not leave the device tagged with a dead request's id).
template <typename Fn>
class ScopeExit {
 public:
  explicit ScopeExit(Fn fn) : fn_(std::move(fn)) {}
  ~ScopeExit() { fn_(); }
  ScopeExit(const ScopeExit&) = delete;
  ScopeExit& operator=(const ScopeExit&) = delete;

 private:
  Fn fn_;
};

// Host-path observable evaluation: one entry per Pauli string, in order,
// coefficients included (DESIGN.md §14).
template <typename FP>
std::vector<cplx64> host_expectations(const obs::Observable& o,
                                      const StateVector<FP>& state,
                                      ThreadPool& pool) {
  std::vector<cplx64> out;
  out.reserve(o.strings.size());
  for (const auto& p : o.strings) {
    out.push_back(obs::expectation(p, state, pool));
  }
  return out;
}

// Times `fn` and, when the run is request-bound, records a "sample" span on
// the request's trace row (DESIGN.md §11). Returns elapsed seconds.
template <typename Fn>
double timed_sample(Tracer* tracer, std::uint64_t corr, Fn&& fn) {
  Timer t;
  const std::uint64_t t0 = Timer::now_micros();
  fn();
  const double seconds = t.seconds();
  if (tracer != nullptr && corr != 0) {
    tracer->record("sample", TraceKind::kSpan, t0,
                   static_cast<std::uint64_t>(seconds * 1e6), span_lane(corr),
                   0, corr);
  }
  return seconds;
}

// ---------------------------------------------------------------------------
// CPU backend: SimulatorCPU over pooled host StateVectors.

// Parses a non-empty fault spec into a shared plan (empty spec -> nullptr).
std::shared_ptr<vgpu::FaultPlan> make_fault_plan(const std::string& fault_spec) {
  if (fault_spec.empty()) return nullptr;
  return std::make_shared<vgpu::FaultPlan>(
      vgpu::FaultPlan::parse(fault_spec).rules());
}

template <typename FP>
class CpuBackend final : public Backend {
 public:
  explicit CpuBackend(Tracer* tracer)
      : sim_(ThreadPool::shared(), tracer),
        tracer_(tracer),
        description_(strfmt("CPU (%u threads)", ThreadPool::shared().num_threads())) {}

  const std::string& spec() const override { return spec_; }
  const std::string& description() const override { return description_; }
  Precision precision() const override { return precision_of<FP>(); }

  // Bounded by host memory rather than a device; 2^30 single-precision
  // amplitudes are 8 GiB, which is where a shared host stops being sane.
  unsigned max_qubits() const override { return 30; }

  BackendRunOutput run(const Circuit& fused, const BackendRunSpec& rs) override {
    sim_.set_correlation(rs.corr);
    ScopeExit clear_corr([this] { sim_.set_correlation(0); });
    const unsigned n = fused.num_qubits;
    std::optional<StateVector<FP>> pooled = pool_.acquire(n);
    StateVector<FP> state = pooled ? std::move(*pooled) : StateVector<FP>(n);
    state.set_zero_state();

    BackendRunOutput out;
    sim_.run(fused, state, rs.seed, &out.measurements, rs.deadline);
    if (rs.num_samples > 0) {
      out.sample_seconds = timed_sample(tracer_, rs.corr, [&] {
        out.samples = statespace::sample(state, rs.num_samples, rs.seed);
      });
    }
    out.amplitudes.reserve(rs.amplitude_indices.size());
    for (index_t i : rs.amplitude_indices) {
      check(i < state.size(), "Backend::run: amplitude index out of range");
      out.amplitudes.push_back(cplx64(state[i].real(), state[i].imag()));
    }
    if (rs.want_state) out.state = state_as_cplx64(state);
    if (rs.observable != nullptr) {
      out.expectations =
          host_expectations(*rs.observable, state, ThreadPool::shared());
    }

    pool_.release(n, std::move(state), pow2(n) * sizeof(cplx<FP>));
    return out;
  }

  engine::PoolStats pool_stats() const override { return pool_.stats(); }
  void trim_pool() override { pool_.clear(); }

 private:
  SimulatorCPU<FP> sim_;
  Tracer* tracer_;
  std::string spec_ = "cpu";
  std::string description_;
  engine::BufferPool<StateVector<FP>> pool_;
};

// ---------------------------------------------------------------------------
// Single virtual GPU backend ("hip" = MI250X GCD, "a100" = A100).

template <typename FP>
class GpuBackend final : public Backend {
 public:
  GpuBackend(std::string spec, const vgpu::DeviceProps& props, Tracer* tracer,
             const std::string& fault_spec)
      : spec_(std::move(spec)),
        dev_(props, tracer),
        sim_(dev_),
        description_(strfmt("%s (warp %u)", props.name.c_str(), props.warp_size)) {
    // Installed after the simulator's own staging allocations, so fault
    // occurrence counters ("the Nth allocation") start at the first request.
    if (!fault_spec.empty()) dev_.set_fault_plan(make_fault_plan(fault_spec));
  }

  const std::string& spec() const override { return spec_; }
  const std::string& description() const override { return description_; }
  Precision precision() const override { return precision_of<FP>(); }

  unsigned max_qubits() const override {
    // DeviceStateVector itself caps at 34 (the emulator's host-memory sanity
    // bound); below that, the virtual device's HBM capacity decides.
    return std::min(34u, vgpu::max_state_qubits(dev_.props(), sizeof(cplx<FP>)));
  }

  BackendRunOutput run(const Circuit& fused, const BackendRunSpec& rs) override {
    dev_.set_correlation(rs.corr);
    ScopeExit clear_corr([this] { dev_.set_correlation(0); });
    try {
      const unsigned n = fused.num_qubits;
      std::optional<hipsim::DeviceStateVector<FP>> pooled = pool_.acquire(n);
      hipsim::DeviceStateVector<FP> state =
          pooled ? std::move(*pooled) : hipsim::DeviceStateVector<FP>(dev_, n);
      sim_.state_space().set_zero_state(state);

      BackendRunOutput out;
      sim_.run(fused, state, rs.seed, &out.measurements, rs.deadline);
      // run() only enqueues; join so execution errors surface here and the
      // caller's wall-clock covers the real work.
      dev_.synchronize();
      if (rs.num_samples > 0) {
        out.sample_seconds = timed_sample(dev_.tracer(), rs.corr, [&] {
          out.samples = sim_.state_space().sample(state, rs.num_samples, rs.seed);
        });
      }
      if (!rs.amplitude_indices.empty()) {
        const auto amps = sim_.state_space().get_amplitudes(state, rs.amplitude_indices);
        out.amplitudes.reserve(amps.size());
        for (const auto& a : amps) out.amplitudes.push_back(cplx64(a.real(), a.imag()));
      }
      if (rs.want_state) out.state = state_as_cplx64(state.to_host());
      if (rs.observable != nullptr) {
        // The device kernel path (paper §1's VQE-style workloads); the
        // device is already synchronized above.
        out.expectations.reserve(rs.observable->strings.size());
        for (const auto& p : rs.observable->strings) {
          out.expectations.push_back(hipsim::expectation(p, state, dev_));
        }
      }

      pool_.release(n, std::move(state), pow2(n) * sizeof(cplx<FP>));
      return out;
    } catch (...) {
      // Leave the device clean for a retry: join every stream and swallow
      // any further deferred errors so they cannot surface in a later run.
      // The aborted request's state buffer was freed by its destructor; the
      // pool is not polluted with garbage.
      try {
        dev_.synchronize();
      } catch (...) {
      }
      throw;
    }
  }

  engine::PoolStats pool_stats() const override { return pool_.stats(); }
  void trim_pool() override { pool_.clear(); }

 private:
  std::string spec_;
  vgpu::Device dev_;
  hipsim::SimulatorHIP<FP> sim_;
  std::string description_;
  engine::BufferPool<hipsim::DeviceStateVector<FP>> pool_;
};

// ---------------------------------------------------------------------------
// Multi-GCD backend ("hip:N"). A MultiGcdSimulator owns its devices and
// state slabs, so the "pool" here keeps whole simulators keyed by qubit
// count and zero-resets them between requests.

template <typename FP>
class MultiGcdBackend final : public Backend {
 public:
  MultiGcdBackend(std::string spec, unsigned num_gcds, Tracer* tracer,
                  const std::string& fault_spec)
      : spec_(std::move(spec)),
        num_gcds_(num_gcds),
        tracer_(tracer),
        props_(vgpu::mi250x_gcd()),
        faults_(make_fault_plan(fault_spec)),
        description_(strfmt("%u x MI250X GCD (multi-GCD HIP)", num_gcds)) {}

  const std::string& spec() const override { return spec_; }
  const std::string& description() const override { return description_; }
  Precision precision() const override { return precision_of<FP>(); }

  unsigned max_qubits() const override {
    const unsigned d = log2_exact(num_gcds_);
    // Each GCD holds 2^(n-d) local amplitudes plus a half-size exchange
    // staging buffer, hence the -1 headroom below the per-GCD capacity.
    const unsigned local_cap = vgpu::max_state_qubits(props_, sizeof(cplx<FP>));
    return std::min(34u, local_cap > 0 ? local_cap - 1 + d : 0);
  }

  BackendRunOutput run(const Circuit& fused, const BackendRunSpec& rs) override {
    const unsigned n = fused.num_qubits;
    auto it = sims_.find(n);
    if (it == sims_.end()) {
      ++pool_misses_;
      it = sims_
               .emplace(n, std::make_unique<hipsim::MultiGcdSimulator<FP>>(
                               n, num_gcds_, props_, tracer_, faults_))
               .first;
    } else {
      ++pool_hits_;
      it->second->set_zero_state();
    }
    hipsim::MultiGcdSimulator<FP>& sim = *it->second;

    for (unsigned k = 0; k < sim.num_gcds(); ++k) {
      sim.device(k).set_correlation(rs.corr);
    }
    ScopeExit clear_corr([&sim] {
      for (unsigned k = 0; k < sim.num_gcds(); ++k) {
        sim.device(k).set_correlation(0);
      }
    });
    try {
      return run_on(sim, fused, rs);
    } catch (...) {
      // Drain every GCD's streams and swallow further deferred errors so a
      // retry starts from a clean device (set_zero_state above resets both
      // the amplitudes and the qubit layout).
      for (unsigned k = 0; k < sim.num_gcds(); ++k) {
        try {
          sim.device(k).synchronize();
        } catch (...) {
        }
      }
      throw;
    }
  }

 private:
  BackendRunOutput run_on(hipsim::MultiGcdSimulator<FP>& sim,
                          const Circuit& fused, const BackendRunSpec& rs) {
    const hipsim::MultiGcdStats before = sim.stats();
    BackendRunOutput out;
    sim.run(fused, rs.seed, &out.measurements, rs.deadline);
    sim.synchronize();
    if (rs.num_samples > 0) {
      out.sample_seconds = timed_sample(tracer_, rs.corr, [&] {
        out.samples = sim.sample(rs.num_samples, rs.seed);
      });
    }
    if (!rs.amplitude_indices.empty() || rs.want_state ||
        rs.observable != nullptr) {
      const StateVector<FP> host = sim.to_host();
      out.amplitudes.reserve(rs.amplitude_indices.size());
      for (index_t i : rs.amplitude_indices) {
        check(i < host.size(), "Backend::run: amplitude index out of range");
        out.amplitudes.push_back(cplx64(host[i].real(), host[i].imag()));
      }
      if (rs.want_state) out.state = state_as_cplx64(host);
      if (rs.observable != nullptr) {
        out.expectations =
            host_expectations(*rs.observable, host, ThreadPool::shared());
      }
    }
    const hipsim::MultiGcdStats after = sim.stats();
    out.counters["slot_swaps"] = static_cast<double>(after.slot_swaps - before.slot_swaps);
    out.counters["peer_bytes"] = static_cast<double>(after.peer_bytes - before.peer_bytes);
    out.counters["local_gate_launches"] =
        static_cast<double>(after.local_gate_launches - before.local_gate_launches);
    return out;
  }

  engine::PoolStats pool_stats() const override {
    engine::PoolStats s;
    s.hits = pool_hits_;
    s.misses = pool_misses_;
    for (const auto& [n, sim] : sims_) {
      // Local slab + half-size exchange buffer per GCD. buffers_pooled
      // counts one buffer per GCD slab, matching the byte accounting (it
      // used to count one per qubit size while the bytes summed every GCD).
      const std::size_t local = pow2(n - log2_exact(num_gcds_)) * sizeof(cplx<FP>);
      s.bytes_pooled += num_gcds_ * (local + local / 2);
      s.buffers_pooled += num_gcds_;
    }
    return s;
  }
  void trim_pool() override { sims_.clear(); }

 private:
  std::string spec_;
  unsigned num_gcds_;
  Tracer* tracer_;
  vgpu::DeviceProps props_;
  std::shared_ptr<vgpu::FaultPlan> faults_;  // shared across all GCDs
  std::string description_;
  std::map<unsigned, std::unique_ptr<hipsim::MultiGcdSimulator<FP>>> sims_;
  std::uint64_t pool_hits_ = 0, pool_misses_ = 0;
};

// ---------------------------------------------------------------------------
// Distributed backend ("dist:N"): SimulatorDist over N thread-ranks on the
// in-process message-passing communicator — the MPI-flavoured path, serving
// the same BackendRunSpec contract as cpu|hip|hip:N. Each request runs one
// SPMD region; rank 0 assembles the output. Ranks are threads over host
// memory, so like the cpu backend there is no device to install a fault
// plan on (fault_spec is accepted and ignored).

template <typename FP>
class DistBackend final : public Backend {
 public:
  DistBackend(std::string spec, unsigned ranks, Tracer* tracer)
      : spec_(std::move(spec)),
        ranks_(ranks),
        tracer_(tracer),
        description_(
            strfmt("%u thread-ranks (message-passing dist)", ranks)),
        pool_(/*max_per_key=*/ranks) {}

  const std::string& spec() const override { return spec_; }
  const std::string& description() const override { return description_; }
  Precision precision() const override { return precision_of<FP>(); }

  // Host-memory bound, same budget as the cpu backend (the ranks partition
  // one host allocation, they do not multiply it).
  unsigned max_qubits() const override { return 30; }

  BackendRunOutput run(const Circuit& fused, const BackendRunSpec& rs) override {
    const unsigned n = fused.num_qubits;
    const unsigned d = log2_exact(ranks_);
    check(n > d, strfmt("dist backend: %u qubits cannot be split over %u "
                        "ranks (need more than %u)",
                        n, ranks_, d));

    BackendRunOutput out;
    dist::DistStats round;  // rank-0 copy of the per-run stats
    std::array<double, 4> summed{};  // bytes + phase ns summed over ranks
    const bool gather_state =
        rs.want_state || rs.num_samples > 0 || rs.observable != nullptr;

    dist::run_spmd(ranks_, [&](dist::Comm& comm) {
      ThreadPool pool(1);
      dist::SimulatorDist<FP> sim(comm, n, pool);
      if (std::optional<StateVector<FP>> pooled = pool_.acquire(n)) {
        sim.adopt_slice(std::move(*pooled));
      }

      std::vector<index_t> meas;
      sim.run(fused, rs.seed, &meas, rs.deadline);

      std::vector<cplx64> amps;
      if (!rs.amplitude_indices.empty()) {
        amps = sim.amplitudes(rs.amplitude_indices);
      }

      StateVector<FP> full(1);
      if (gather_state) full = sim.gather();

      const dist::DistStats& st = sim.stats();
      const std::vector<double> agg = comm.allreduce_sum(std::vector<double>{
          static_cast<double>(st.bytes_sent), static_cast<double>(st.pack_ns),
          static_cast<double>(st.exchange_ns),
          static_cast<double>(st.unpack_ns)});

      if (comm.rank() == 0) {
        out.measurements = std::move(meas);
        out.amplitudes = std::move(amps);
        if (rs.num_samples > 0) {
          out.sample_seconds = timed_sample(tracer_, rs.corr, [&] {
            out.samples = statespace::sample(full, rs.num_samples, rs.seed);
          });
        }
        if (rs.want_state) out.state = state_as_cplx64(full);
        if (rs.observable != nullptr) {
          out.expectations = host_expectations(*rs.observable, full, pool);
        }
        round = st;
        std::copy(agg.begin(), agg.end(), summed.begin());
      }

      pool_.release(n, sim.release_slice(),
                    pow2(sim.local_qubits()) * sizeof(cplx<FP>));
    });

    out.counters["slot_swaps"] = static_cast<double>(round.slot_swaps);
    out.counters["swap_rounds"] = static_cast<double>(round.swap_rounds);
    out.counters["swap_chunks"] = static_cast<double>(round.swap_chunks);
    out.counters["peer_bytes"] = summed[0];
    out.counters["pack_ns"] = summed[1];
    out.counters["exchange_ns"] = summed[2];
    out.counters["unpack_ns"] = summed[3];
    export_counters(out.counters);
    return out;
  }

  engine::PoolStats pool_stats() const override { return pool_.stats(); }
  void trim_pool() override { pool_.clear(); }

 private:
  // Cumulative dist counters on the trace (Chrome "C" events), alongside
  // the engine's serving metrics (docs/OBSERVABILITY.md).
  void export_counters(const std::map<std::string, double>& delta) {
    if (tracer_ == nullptr) return;
    for (const auto& [name, v] : delta) {
      cumulative_[name] += v;
      tracer_->set_counter("dist/" + name, cumulative_[name]);
    }
  }

  std::string spec_;
  unsigned ranks_;
  Tracer* tracer_;
  std::string description_;
  engine::BufferPool<StateVector<FP>> pool_;
  std::map<std::string, double> cumulative_;
};

template <typename FP>
std::unique_ptr<Backend> make_backend(const BackendSpec& spec, Tracer* tracer,
                                      const std::string& fault_spec) {
  switch (spec.kind) {
    case BackendSpec::Kind::kCpu:
      return std::make_unique<CpuBackend<FP>>(tracer);
    case BackendSpec::Kind::kHip:
      return std::make_unique<GpuBackend<FP>>(spec.to_string(),
                                              vgpu::mi250x_gcd(), tracer,
                                              fault_spec);
    case BackendSpec::Kind::kA100:
      return std::make_unique<GpuBackend<FP>>(spec.to_string(), vgpu::a100(),
                                              tracer, fault_spec);
    case BackendSpec::Kind::kMultiGcd:
      return std::make_unique<MultiGcdBackend<FP>>(spec.to_string(), spec.ranks,
                                                   tracer, fault_spec);
    case BackendSpec::Kind::kDist:
      return std::make_unique<DistBackend<FP>>(spec.to_string(), spec.ranks,
                                               tracer);
    case BackendSpec::Kind::kAuto:
      break;
  }
  throw Error(
      "backend 'auto' names a placement policy, not a device: submit through "
      "SimulationEngine with EngineOptions::enable_planner (DESIGN.md §13)");
}

}  // namespace

BackendSpec Backend::spec_info() const { return BackendSpec::parse(spec()); }

bool is_backend_spec(const std::string& spec) {
  return BackendSpec::try_parse(spec).has_value();
}

unsigned backend_max_qubits(const BackendSpec& spec, Precision p) {
  const std::size_t amp = amp_bytes(p);
  switch (spec.kind) {
    case BackendSpec::Kind::kCpu:
      return 30;  // CpuBackend's host-memory sanity bound
    case BackendSpec::Kind::kHip:
      return std::min(34u, vgpu::max_state_qubits(vgpu::mi250x_gcd(), amp));
    case BackendSpec::Kind::kA100:
      return std::min(34u, vgpu::max_state_qubits(vgpu::a100(), amp));
    case BackendSpec::Kind::kMultiGcd: {
      // MultiGcdBackend: per-GCD slab + half-size exchange staging.
      const unsigned d = log2_exact(spec.ranks);
      const unsigned local_cap = vgpu::max_state_qubits(vgpu::mi250x_gcd(), amp);
      return std::min(34u, local_cap > 0 ? local_cap - 1 + d : 0);
    }
    case BackendSpec::Kind::kDist:
      return 30;  // ranks partition one host allocation
    case BackendSpec::Kind::kAuto:
      return 0;
  }
  return 0;
}

bool backend_supports_noise(const BackendSpec& spec) {
  // The trajectory runner (src/noise/trajectory.h) streams Kraus selections
  // over a host StateVector; only the cpu backend exposes one per sub-run.
  return spec.kind == BackendSpec::Kind::kCpu;
}

bool backend_fits(const BackendSpec& spec, unsigned num_qubits, Precision p) {
  if (spec.kind == BackendSpec::Kind::kAuto) return false;
  if (num_qubits < 1 || num_qubits > backend_max_qubits(spec, p)) return false;
  // Distributed slices: every rank must hold at least one amplitude pair.
  if (spec.kind == BackendSpec::Kind::kDist &&
      num_qubits <= log2_exact(spec.ranks)) {
    return false;
  }
  return true;
}

std::unique_ptr<Backend> create_backend(const BackendSpec& spec,
                                        Precision precision, Tracer* tracer,
                                        const std::string& fault_spec) {
  return precision == Precision::kSingle
             ? make_backend<float>(spec, tracer, fault_spec)
             : make_backend<double>(spec, tracer, fault_spec);
}

std::unique_ptr<Backend> create_backend(const std::string& spec, Precision precision,
                                        Tracer* tracer,
                                        const std::string& fault_spec) {
  return create_backend(BackendSpec::parse(spec), precision, tracer, fault_spec);
}

std::unique_ptr<Backend> create_backend(const std::string& spec,
                                        const std::string& precision, Tracer* tracer,
                                        const std::string& fault_spec) {
  check(precision == "single" || precision == "double",
        "unknown precision '" + precision + "' (expected single|double)");
  return create_backend(
      spec, precision == "single" ? Precision::kSingle : Precision::kDouble, tracer,
      fault_spec);
}

RunResult run_circuit(Backend& backend, const Circuit& circuit, const RunOptions& opt) {
  RunResult r;
  Timer total;

  Timer t0;
  const FusionResult fused = fuse_circuit(circuit, opt.fusion);
  r.fusion = fused.stats;
  r.fuse_seconds = t0.seconds();

  BackendRunSpec rs;
  rs.seed = opt.seed;
  rs.num_samples = opt.num_samples;
  Timer t1;
  BackendRunOutput out = backend.run(fused.circuit, rs);
  r.sim_seconds = t1.seconds();
  r.measurements = std::move(out.measurements);
  r.samples = std::move(out.samples);
  r.total_seconds = total.seconds();
  return r;
}

}  // namespace qhip
