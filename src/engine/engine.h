// SimulationEngine: a batched, cache-aware serving layer over the runtime
// Backend API.
//
// The one-shot drivers pay transpile + allocation + device construction on
// every circuit execution. The engine amortizes all three for a long-lived
// service: requests are queued and executed by a small worker pool; fused
// circuits come from an LRU FusedCircuitCache; state vectors come from each
// backend's BufferPool; identical requests (same circuit, backend, fusion,
// seed, outputs) can be served straight from a result cache, which is sound
// because a simulation with a fixed seed is a pure function of the request.
//
// Requests on *different* backend instances run concurrently; calls into one
// backend are serialized with a per-instance lock (the simulators are not
// reentrant). Oversized requests — beyond the engine cap or the backend's
// device memory — are rejected gracefully with ok=false, as are requests
// whose deadline lapses while queued or mid-run (backends check the
// deadline cooperatively between fused-gate applications).
//
// Error recovery (DESIGN.md §10): device failures surface as structured
// SimErrorCodes, never strings alone. Transient device faults (OOM,
// backend faults — real or injected via EngineOptions::fault_spec) are
// retried with exponential backoff up to max_attempts per backend; when the
// primary backend keeps failing and fallback_backend is configured, the
// request degrades gracefully onto it (e.g. hip -> cpu), flagged in the
// result and the metrics. Identical in-flight requests coalesce onto one
// run; the owner's outcome — success or failure — propagates to every
// waiter, so a persistent fault costs one retry ladder, not one per waiter.
//
// Placement (DESIGN.md §13): a request may name backend = "auto" instead of
// a device. The engine's Planner then scores every candidate backend and
// fusion option with the calibrated roofline perfmodel plus the predicted
// seconds already queued per backend, runs the request on the winner, and
// feeds the observed execute time back into the calibration table — so
// placement converges on the machine actually serving, not the paper's.
//
// Engine metrics (request counts, cache hit rates, latency percentiles over
// a bounded reservoir, pooled bytes, retry/fallback/fault counters, planner
// decisions and calibration factors) export as counters into the same
// prof/trace JSON as the kernel timeline via export_metrics().
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <future>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/core/circuit.h"
#include "src/engine/backend.h"
#include "src/engine/circuit_cache.h"
#include "src/engine/planner.h"
#include "src/noise/trajectory.h"
#include "src/obs/observable.h"
#include "src/engine/watchdog.h"
#include "src/prof/flight_recorder.h"
#include "src/prof/histogram.h"
#include "src/prof/reservoir.h"
#include "src/prof/trace.h"

namespace qhip::engine {

// Structured outcome classes for SimResult. Everything except kOk implies
// ok=false; `error` carries the human-readable detail.
enum class SimErrorCode {
  kOk = 0,
  kRejected,          // admission: bad request, engine cap, queue full
  kOutOfMemory,       // device allocation failed (real or injected)
  kBackendFault,      // device runtime error (failed stream op / kernel)
  kDeadlineExceeded,  // timed out in queue or at a mid-run checkpoint
  kInternal,          // unclassified execution failure
};

const char* to_string(SimErrorCode code);

// What the request asks the engine to compute (DESIGN.md §14).
//
//  kCircuit      — today's workloads: final state / samples / amplitudes.
//  kExpectation  — <psi| O |psi> of SimRequest::observable over the ideal
//                  final state; runs on any backend (hipsim::expectation on
//                  device, the obs:: host path on cpu).
//  kTrajectory   — quantum-trajectory noise simulation: num_trajectories
//                  sub-runs under SimRequest::noise, fanned out across the
//                  engine's workers and aggregated into a mean distribution
//                  (or, with a non-empty observable, a mean ± stderr with
//                  optional early stop). Noise runs on host state vectors,
//                  so only cpu-class backends qualify; "auto" picks among
//                  the noise-capable planner candidates.
enum class RequestKind {
  kCircuit = 0,
  kExpectation,
  kTrajectory,
};

const char* to_string(RequestKind kind);

struct SimRequest {
  Circuit circuit;
  // Any BackendSpec string: "cpu" | "hip" | "a100" | "hip:N" | "dist:N",
  // or "auto" to let the engine's cost-model planner pick both the backend
  // AND the fusion options (DESIGN.md §13; requires enable_planner).
  std::string backend = "cpu";
  Precision precision = Precision::kSingle;
  // How to fuse — the same FusionOptions the FusedCircuitCache keys on and
  // RunOptions carries. Ignored (planner-chosen) when backend is "auto".
  FusionOptions fusion;
  std::uint64_t seed = 1;
  std::size_t num_samples = 0;
  std::vector<index_t> amplitude_indices;
  bool want_state = false;
  // Deadline in seconds since submit; 0 = none. Enforced at dequeue AND
  // cooperatively between fused-gate applications mid-run.
  double timeout_seconds = 0;
  // Forces a fresh simulation even when an identical request is cached.
  bool bypass_result_cache = false;

  // Workload kind; the fields below it are only read for the kinds noted.
  RequestKind kind = RequestKind::kCircuit;
  // kExpectation: the observable to evaluate. kTrajectory: optional — empty
  // means "return the mean distribution", non-empty means "return the
  // trajectory mean ± stderr of this observable".
  obs::Observable observable;
  // kTrajectory only.
  noise::NoiseModel noise;
  std::size_t num_trajectories = 0;
  // kTrajectory with an observable: stop early once the standard error of
  // the running mean falls to or below this (0 = always run all N). The
  // stopping decision is made on the ordered trajectory prefix, so it is
  // deterministic regardless of worker scheduling.
  double trajectory_tolerance = 0;

  // Deprecated aliases of fusion.max_fused_qubits / fusion.window_moments,
  // kept for one release so `req.max_fused = 3` keeps compiling (migration
  // note in DESIGN.md §13). They alias `fusion`, which is why the copy/move
  // operations below are hand-written: the defaults would rebind-copy the
  // *source's* references and dangle.
  unsigned& max_fused = fusion.max_fused_qubits;
  unsigned& window = fusion.window_moments;

  SimRequest() = default;
  SimRequest(const SimRequest& o)
      : circuit(o.circuit), backend(o.backend), precision(o.precision),
        fusion(o.fusion), seed(o.seed), num_samples(o.num_samples),
        amplitude_indices(o.amplitude_indices), want_state(o.want_state),
        timeout_seconds(o.timeout_seconds),
        bypass_result_cache(o.bypass_result_cache), kind(o.kind),
        observable(o.observable), noise(o.noise),
        num_trajectories(o.num_trajectories),
        trajectory_tolerance(o.trajectory_tolerance) {}
  SimRequest(SimRequest&& o) noexcept
      : circuit(std::move(o.circuit)), backend(std::move(o.backend)),
        precision(o.precision), fusion(o.fusion), seed(o.seed),
        num_samples(o.num_samples),
        amplitude_indices(std::move(o.amplitude_indices)),
        want_state(o.want_state), timeout_seconds(o.timeout_seconds),
        bypass_result_cache(o.bypass_result_cache), kind(o.kind),
        observable(std::move(o.observable)), noise(std::move(o.noise)),
        num_trajectories(o.num_trajectories),
        trajectory_tolerance(o.trajectory_tolerance) {}
  SimRequest& operator=(const SimRequest& o) {
    circuit = o.circuit;
    backend = o.backend;
    precision = o.precision;
    fusion = o.fusion;
    seed = o.seed;
    num_samples = o.num_samples;
    amplitude_indices = o.amplitude_indices;
    want_state = o.want_state;
    timeout_seconds = o.timeout_seconds;
    bypass_result_cache = o.bypass_result_cache;
    kind = o.kind;
    observable = o.observable;
    noise = o.noise;
    num_trajectories = o.num_trajectories;
    trajectory_tolerance = o.trajectory_tolerance;
    return *this;
  }
  SimRequest& operator=(SimRequest&& o) noexcept {
    circuit = std::move(o.circuit);
    backend = std::move(o.backend);
    precision = o.precision;
    fusion = o.fusion;
    seed = o.seed;
    num_samples = o.num_samples;
    amplitude_indices = std::move(o.amplitude_indices);
    want_state = o.want_state;
    timeout_seconds = o.timeout_seconds;
    bypass_result_cache = o.bypass_result_cache;
    kind = o.kind;
    observable = std::move(o.observable);
    noise = std::move(o.noise);
    num_trajectories = o.num_trajectories;
    trajectory_tolerance = o.trajectory_tolerance;
    return *this;
  }
};

struct SimResult {
  bool ok = false;
  SimErrorCode code = SimErrorCode::kOk;  // != kOk exactly when !ok
  std::string error;  // set when !ok (rejection or execution failure)
  RequestKind kind = RequestKind::kCircuit;  // echoed from the request

  // Stable per-request id, assigned at submit (1, 2, ...). Doubles as the
  // trace correlation id: the request's spans and the kernel/memcpy events
  // its backend run produced all carry it (DESIGN.md §11).
  std::uint64_t request_id = 0;

  std::vector<index_t> measurements;
  std::vector<index_t> samples;
  std::vector<cplx64> amplitudes;
  std::vector<cplx64> state;
  std::map<std::string, double> counters;  // backend extras (slot_swaps, ...)

  // kExpectation: <psi| O |psi> (exactly real for Hermitian O up to fp).
  // kTrajectory with an observable: the trajectory mean of <O>, with
  // expectation_stderr the standard error of that mean.
  cplx64 expectation{};
  double expectation_stderr = 0;
  // kTrajectory: trajectories actually executed (< num_trajectories only
  // when early stop triggered) and, without an observable, the mean output
  // probability distribution over those trajectories (2^n entries).
  std::size_t trajectories_run = 0;
  std::vector<double> distribution;

  FusionStats fusion;
  bool fused_cache_hit = false;
  bool result_cache_hit = false;
  std::string backend_used;   // spec that produced the result ("" if none ran)
  unsigned attempts = 0;      // backend run attempts (0 on cache hit/rejection)
  bool fallback_used = false; // served by EngineOptions::fallback_backend
  double fuse_seconds = 0;
  double queue_seconds = 0;  // submit -> dispatch
  double run_seconds = 0;    // backend execution (0 on a result-cache hit)
  double sample_seconds = 0; // Born-rule sampling within the backend run
  double total_seconds = 0;  // submit -> completion
};

struct EngineOptions {
  unsigned num_workers = 2;                // scheduler threads (min 1)
  std::size_t fused_cache_capacity = 128;  // circuits; 0 disables the cache
  std::size_t result_cache_capacity = 64;  // requests; 0 disables memoization
  unsigned max_qubits = 26;     // engine-wide cap (the drivers' host cap)
  std::size_t max_pending = 1024;  // queue bound; beyond it submissions reject
  Tracer* tracer = nullptr;     // sink for backend events + engine counters

  // Error recovery. A request failing with a transient device code (OOM,
  // backend fault) is re-run up to max_attempts times on its backend, with
  // retry_backoff_seconds doubling per retry; if the backend keeps failing
  // and fallback_backend names a different valid spec, one final attempt
  // ladder runs there (graceful degradation, e.g. "hip" -> "cpu").
  // Deadline expiry is never retried.
  unsigned max_attempts = 3;
  double retry_backoff_seconds = 0.001;
  std::string fallback_backend;  // "" = no fallback

  // Installed as a vgpu::FaultPlan into every virtual-GPU backend the
  // engine creates (QHIP_FAULT_SPEC grammar; see src/vgpu/fault.h).
  std::string fault_spec;

  // Completion-latency reservoir: metrics() keeps the most recent this-many
  // samples, so a long-lived engine stays O(window) in memory and sort cost.
  std::size_t latency_window = 4096;

  // Cost-model planner behind backend = "auto" (DESIGN.md §13). When
  // enabled, the engine owns a Planner that scores every candidate backend
  // against the calibrated roofline and current load, and calibrates online
  // from every completed run (explicit-backend runs included). When
  // disabled, "auto" requests are rejected at admission.
  bool enable_planner = true;
  // Allowlist of backend specs "auto" may place onto; empty means
  // {"cpu", "hip", "a100"}. Each entry must parse as a runnable spec —
  // the constructor throws qhip::Error otherwise.
  std::vector<std::string> planner_candidates;

  // Threads per trajectory sub-run (each worker runs its sub-runs on its own
  // pool of this size). The default of 1 makes a trajectory batch bit-
  // identical to the serial run_trajectory reference loop — the fp reduction
  // order inside apply_channel depends on the pool width; raise it to trade
  // that identity for per-trajectory speed on big states.
  unsigned trajectory_threads = 1;

  // Always-on flight recorder (src/prof/flight_recorder.h): the last
  // this-many completed requests are reconstructible as a Perfetto snapshot
  // after the fact. 0 disables it (trace_sink() then returns opt_.tracer).
  std::size_t flight_recorder_capacity = 256;
  std::size_t flight_recorder_events_per_request = 256;

  // SLO watchdog (src/engine/watchdog.h): armed iff watchdog.rules is
  // non-empty. A breach bumps EngineMetrics::slo_breaches and — when
  // snapshot_dir is non-empty — writes snapshot-<ts>-<reason>.trace.json
  // plus a .flightrec.txt text dump there (rate-limited by
  // watchdog.min_trigger_interval_seconds).
  WatchdogOptions watchdog;
  std::string snapshot_dir;
};

struct EngineMetrics {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;  // ok results
  std::uint64_t rejected = 0;   // !ok results (cap, memory, deadline, queue)
  std::uint64_t result_cache_hits = 0;
  // Error-recovery counters.
  std::uint64_t retries = 0;            // extra attempts beyond each first
  std::uint64_t fallbacks = 0;          // requests that ran on the fallback
  std::uint64_t coalesced_failures = 0; // waiters served a propagated failure
  std::uint64_t faults_oom = 0;         // failed attempts by code
  std::uint64_t faults_backend = 0;
  std::uint64_t faults_deadline = 0;    // queue + mid-run deadline expiries
  FusedCacheStats fused_cache;
  std::uint64_t pool_hits = 0;   // summed over live backends
  std::uint64_t pool_misses = 0;
  std::uint64_t pool_discarded = 0;  // buffers dropped (capacity or trim)
  std::size_t bytes_pooled = 0;
  std::size_t buffers_pooled = 0;
  std::size_t backends_created = 0;
  double p50_ms = 0;   // completion latency percentiles (submit -> done)
  double p95_ms = 0;   // (over the bounded latency reservoir)
  double mean_ms = 0;

  // Fixed-bucket log-scale distributions over *all* completed (ok) requests
  // since engine start — unlike the bounded reservoir above, these never
  // forget and aggregate across engines (docs/OBSERVABILITY.md).
  prof::Histogram queue_ms = prof::latency_ms_histogram();
  prof::Histogram fuse_ms = prof::latency_ms_histogram();
  prof::Histogram execute_ms = prof::latency_ms_histogram();
  prof::Histogram sample_ms = prof::latency_ms_histogram();
  prof::Histogram total_ms = prof::latency_ms_histogram();
  prof::Histogram fused_gates = prof::count_histogram();
  prof::Histogram result_bytes = prof::bytes_histogram();

  // Workload-kind counters (DESIGN.md §14): expectation requests admitted
  // (cache hits included), trajectory batches launched, trajectories
  // actually executed across all batches, and batches that stopped early on
  // the stderr tolerance; trajectories_per_batch is the per-batch executed
  // count distribution.
  std::uint64_t expectation_requests = 0;
  std::uint64_t trajectory_batches = 0;
  std::uint64_t trajectories_run = 0;
  std::uint64_t trajectory_early_stops = 0;
  prof::Histogram trajectories_per_batch = prof::count_histogram();

  // Planner (backend = "auto") decision and calibration state; all zero /
  // empty when the planner is disabled (DESIGN.md §13).
  std::uint64_t planner_decisions = 0;
  std::uint64_t planner_calibrated_decisions = 0;  // used a learned factor
  std::uint64_t planner_observations = 0;
  double planner_predicted_seconds = 0;  // calibrated, summed over decisions
  double planner_observed_seconds = 0;   // summed over observations
  std::map<std::string, std::uint64_t> planner_chosen;  // spec -> picks
  std::map<std::string, double> planner_calibration;  // "spec/q<bucket>" -> f

  // SLO watchdog / snapshot trigger state (0 / empty when no rules are
  // configured).
  std::uint64_t slo_breaches = 0;
  std::uint64_t snapshots_written = 0;
  std::string last_snapshot_path;

  // Slowest request seen per stage since engine start: what to_prom_text
  // emits as "# EXEMPLAR" comment lines so a scrape can name the request
  // behind each latency family's tail (fetch it from /debug/requests or a
  // snapshot by corr id). Keys: queue, fuse, execute, sample, total.
  struct StageExemplar {
    std::uint64_t request_id = 0;
    double ms = 0;
  };
  std::map<std::string, StageExemplar> exemplars;

  // Prometheus text exposition (version 0.0.4): counters, gauges and the
  // histograms above as qhip_engine_* families, ready for a /metrics scrape
  // or `qsim_base_hip --prom` (field reference in docs/OBSERVABILITY.md).
  std::string to_prom_text() const;
};

// Exact identity of a request's result: every field that affects the
// simulation output, including the full per-gate circuit content (matrices
// as bit-exact doubles). Two requests are interchangeable iff their
// summaries are equal — the result cache stores this alongside the 64-bit
// hash key and verifies it on every hit, so a hash collision can never
// serve another request's payload.
std::string canonical_request_summary(const SimRequest& req);

class SimulationEngine {
 public:
  // Completion callback for the push-style submit overload. Invoked exactly
  // once per request — on a worker thread for executed requests, or inline
  // on the submitting thread for synchronous rejections (queue full, engine
  // stopped). It must not call back into the engine's blocking APIs.
  using CompletionFn = std::function<void(SimResult)>;

  explicit SimulationEngine(EngineOptions opt = {});
  // Equivalent to stop(): drains gracefully, then tears down the backends.
  ~SimulationEngine();

  SimulationEngine(const SimulationEngine&) = delete;
  SimulationEngine& operator=(const SimulationEngine&) = delete;

  // Enqueues a request. Never throws on bad requests: rejections come back
  // through the future as ok=false results.
  std::future<SimResult> submit(SimRequest req);

  // Callback-style submit for serving front-ends that must not park a
  // thread per pending request: `on_done` fires with the result instead of
  // a future. Returns the assigned request id (== SimResult::request_id ==
  // the trace correlation id).
  std::uint64_t submit(SimRequest req, CompletionFn on_done);

  // Synchronous convenience: submit + wait.
  SimResult run(SimRequest req);

  // Graceful drain: stops accepting new requests, fails everything still
  // *queued* with a structured kRejected result, finishes everything
  // in-flight (including trajectory batches whose sub-jobs are still
  // fanning out), and joins the workers. Every accepted request is
  // guaranteed exactly one completion — future or callback — before stop()
  // returns. Idempotent and safe to race with concurrent submits (which
  // reject once the drain begins); the destructor calls it.
  void stop();

  // The options the engine actually runs with (post-validation: num_workers
  // is clamped to the promised minimum of 1).
  const EngineOptions& options() const { return opt_; }

  // The "auto" placement planner; nullptr when EngineOptions::enable_planner
  // is false. Exposed so callers can seed or inspect calibration directly
  // (tests inject observations; dashboards read stats()).
  Planner* planner() { return planner_.get(); }
  const Planner* planner() const { return planner_.get(); }

  EngineMetrics metrics() const;

  // Writes the current metrics as "engine/..." counters into the tracer
  // passed at construction (no-op without one), so they serialize into the
  // Perfetto trace JSON next to the kernel events.
  void export_metrics() const;

  // The Tracer front-ends should install where they would use opt_.tracer:
  // the flight recorder's capture sink when the recorder is enabled
  // (forwarding to opt_.tracer), opt_.tracer itself (possibly null)
  // otherwise. All engine spans and backend device events flow through it.
  Tracer* trace_sink() const { return trace_; }

  // Flight recorder / watchdog accessors; null when disabled by options.
  prof::FlightRecorder* flight_recorder() { return recorder_.get(); }
  const prof::FlightRecorder* flight_recorder() const {
    return recorder_.get();
  }
  const SloWatchdog* watchdog() const { return watchdog_.get(); }

  // Human-readable debug payload: the flight recorder's request table plus
  // the watchdog's rule/window status (the {"op":"debug"} and
  // GET /debug/requests body).
  std::string debug_text() const;

  // Writes snapshot-<ts>-<reason>.trace.json and a matching .flightrec.txt
  // into `dir` (or opt_.snapshot_dir when empty). Returns the trace path,
  // or "" when the recorder is disabled, no directory is configured, or the
  // write fails — snapshots are best-effort and never throw.
  std::string trigger_snapshot(const std::string& reason,
                               const std::string& dir = {});

 private:
  struct Job;
  struct BackendSlot;
  // Shared state of one fanned-out trajectory batch (defined in engine.cpp).
  struct TrajectoryBatch;

  // One in-flight simulation of a cacheable key. Waiters block on the
  // engine-wide results_cv_ until done, then read the owner's result —
  // success or failure — directly (anti-stampede with failure propagation).
  struct Flight {
    std::string summary;  // exact request identity (collision guard)
    bool done = false;
    SimResult result;     // valid once done
  };

  struct CacheEntry {
    std::string summary;  // verified on every hit (collision guard)
    SimResult result;
  };

  void worker_loop();
  // Admission (queue bound, stop flag) shared by both submit overloads;
  // fulfils the job immediately on rejection.
  std::uint64_t submit_job(Job&& job);
  // Fulfils the job's promise or completion callback (exactly one is set).
  static void deliver(Job& job, SimResult res);
  void process(Job& job);
  // One attempt ladder on `spec` with `fusion` (the request's own, or the
  // planner's choice): fuse (cached), admission-check against the backend's
  // device memory, run with retries/backoff. Returns the structured
  // outcome; never throws.
  SimResult execute_with_retries(const SimRequest& q, const std::string& spec,
                                 const FusionOptions& fusion,
                                 const Deadline& deadline, std::uint64_t corr,
                                 unsigned* attempts);
  // Records a request-lifecycle span ([ts_us, ts_us+dur_us]) on the trace
  // row of request `corr` (no-op without a tracer).
  void span(const char* name, std::uint64_t corr, std::uint64_t ts_us,
            std::uint64_t dur_us, std::string detail = {}) const;
  BackendSlot& resolve_backend(const std::string& spec, Precision precision);
  // Trajectory fan-out (DESIGN.md §14). launch_trajectory_batch prepares the
  // circuit (normalized, cached), prices the batch as N x the per-trajectory
  // roofline prediction, and enqueues min(N, num_workers) sub-jobs at the
  // FRONT of the worker queue — the launching worker never blocks on them,
  // so the fan-out cannot deadlock even with one worker. Each sub-job claims
  // trajectory indices from the shared cursor and streams contributions into
  // the ordered accumulator; the last sub-run to exit finalizes the batch
  // (aggregation, metrics, result cache, flight publication, promise).
  void launch_trajectory_batch(Job& job, std::uint64_t key,
                               std::string summary,
                               std::shared_ptr<Flight> flight,
                               const std::string& spec, const Deadline& deadline,
                               double queue_seconds);
  void trajectory_sub_loop(const std::shared_ptr<TrajectoryBatch>& batch);
  template <typename FP>
  void run_trajectory_subs(TrajectoryBatch& batch);
  void finalize_trajectory_batch(TrajectoryBatch& batch);
  // Load map: predicted seconds of work queued/running per backend spec —
  // what the planner's queued_seconds hook reads for load-aware placement.
  double queued_load(const std::string& spec) const;
  void adjust_load(const std::string& spec, double delta);
  static std::uint64_t result_key(const SimRequest& req,
                                  std::uint64_t circuit_hash);
  void record_done(const SimResult& res);
  void count_fault(SimErrorCode code);
  static SimResult rejected(std::string why,
                            SimErrorCode code = SimErrorCode::kRejected);

  EngineOptions opt_;
  FusedCircuitCache fused_cache_;
  std::unique_ptr<Planner> planner_;  // non-null iff opt_.enable_planner
  std::atomic<std::uint64_t> next_request_id_{1};

  // Trace plumbing (DESIGN.md §16): recorder_ is non-null iff
  // flight_recorder_capacity > 0; trace_ is the sink all spans and backends
  // record into — the recorder's capture sink (downstream = opt_.tracer)
  // when enabled, opt_.tracer directly (possibly null) otherwise.
  std::unique_ptr<prof::FlightRecorder> recorder_;
  Tracer* trace_ = nullptr;
  std::unique_ptr<SloWatchdog> watchdog_;  // non-null iff rules configured

  mutable std::mutex load_mu_;
  std::map<std::string, double> backend_load_s_;  // spec -> predicted seconds

  // Plan memo for hot circuits: (circuit, precision, window) -> the planner's
  // full candidate list. Raw predictions depend only on the workload, so a
  // hit is re-scored with the *current* calibration and load
  // (Planner::rescore) — per-request planning cost drops from a fusion sweep
  // to a hash plus a few map lookups, with no staleness.
  mutable std::mutex plan_mu_;
  std::map<std::uint64_t, std::shared_ptr<const PlanChoice>> plan_cache_;

  mutable std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::list<Job> queue_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
  // Serializes stop()/destructor callers; whoever acquires it first drains
  // and joins, later callers fall through once the drain is complete.
  std::mutex stop_mu_;

  mutable std::mutex backends_mu_;
  std::map<std::string, std::unique_ptr<BackendSlot>> backends_;

  mutable std::mutex results_mu_;
  std::condition_variable results_cv_;  // signals in-flight completions
  std::list<std::pair<std::uint64_t, CacheEntry>> result_lru_;
  std::map<std::uint64_t,
           std::list<std::pair<std::uint64_t, CacheEntry>>::iterator>
      result_index_;
  std::map<std::uint64_t, std::shared_ptr<Flight>> in_flight_;

  mutable std::mutex metrics_mu_;
  std::uint64_t submitted_ = 0, completed_ = 0, rejected_ = 0;
  std::uint64_t result_cache_hits_ = 0;
  std::uint64_t retries_ = 0, fallbacks_ = 0, coalesced_failures_ = 0;
  std::uint64_t faults_oom_ = 0, faults_backend_ = 0, faults_deadline_ = 0;
  // Completion latencies, fixed-capacity ring (opt_.latency_window);
  // re-seated to the configured capacity in the constructor.
  prof::LatencyReservoir latency_res_{0};
  // Per-stage distributions over all ok results (guarded by metrics_mu_).
  prof::Histogram hist_queue_ms_ = prof::latency_ms_histogram();
  prof::Histogram hist_fuse_ms_ = prof::latency_ms_histogram();
  prof::Histogram hist_execute_ms_ = prof::latency_ms_histogram();
  prof::Histogram hist_sample_ms_ = prof::latency_ms_histogram();
  prof::Histogram hist_total_ms_ = prof::latency_ms_histogram();
  prof::Histogram hist_fused_gates_ = prof::count_histogram();
  prof::Histogram hist_result_bytes_ = prof::bytes_histogram();
  // Workload-kind counters (guarded by metrics_mu_).
  std::uint64_t expectation_requests_ = 0;
  std::uint64_t trajectory_batches_ = 0;
  std::uint64_t trajectories_run_ = 0;
  std::uint64_t trajectory_early_stops_ = 0;
  prof::Histogram hist_trajectories_per_batch_ = prof::count_histogram();
  // Watchdog/snapshot bookkeeping and per-stage slowest-request exemplars
  // (guarded by metrics_mu_).
  std::uint64_t slo_breaches_ = 0;
  std::uint64_t snapshots_written_ = 0;
  std::string last_snapshot_path_;
  std::map<std::string, EngineMetrics::StageExemplar> slowest_;
};

}  // namespace qhip::engine
