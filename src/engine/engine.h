// SimulationEngine: a batched, cache-aware serving layer over the runtime
// Backend API.
//
// The one-shot drivers pay transpile + allocation + device construction on
// every circuit execution. The engine amortizes all three for a long-lived
// service: requests are queued and executed by a small worker pool; fused
// circuits come from an LRU FusedCircuitCache; state vectors come from each
// backend's BufferPool; identical requests (same circuit, backend, fusion,
// seed, outputs) can be served straight from a result cache, which is sound
// because a simulation with a fixed seed is a pure function of the request.
//
// Requests on *different* backend instances run concurrently; calls into one
// backend are serialized with a per-instance lock (the simulators are not
// reentrant). Oversized requests — beyond the engine cap or the backend's
// device memory — are rejected gracefully with ok=false, as are requests
// whose admission deadline lapsed while queued (kernels are not preemptible,
// so timeouts are enforced at dispatch, not mid-run).
//
// Engine metrics (request counts, cache hit rates, latency percentiles,
// pooled bytes) export as counters into the same prof/trace JSON as the
// kernel timeline via export_metrics().
#pragma once

#include <condition_variable>
#include <cstdint>
#include <future>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "src/core/circuit.h"
#include "src/engine/backend.h"
#include "src/engine/circuit_cache.h"
#include "src/prof/trace.h"

namespace qhip::engine {

struct SimRequest {
  Circuit circuit;
  std::string backend = "cpu";  // "cpu" | "hip" | "a100" | "hip:N"
  Precision precision = Precision::kSingle;
  unsigned max_fused = 2;       // fusion limit (paper sweeps 2..6)
  unsigned window = 4;          // fusion temporal window
  std::uint64_t seed = 1;
  std::size_t num_samples = 0;
  std::vector<index_t> amplitude_indices;
  bool want_state = false;
  // Admission deadline in seconds since submit; 0 = none. A request still
  // queued when its deadline lapses is rejected without running.
  double timeout_seconds = 0;
  // Forces a fresh simulation even when an identical request is cached.
  bool bypass_result_cache = false;
};

struct SimResult {
  bool ok = false;
  std::string error;  // set when !ok (rejection or execution failure)

  std::vector<index_t> measurements;
  std::vector<index_t> samples;
  std::vector<cplx64> amplitudes;
  std::vector<cplx64> state;
  std::map<std::string, double> counters;  // backend extras (slot_swaps, ...)

  FusionStats fusion;
  bool fused_cache_hit = false;
  bool result_cache_hit = false;
  double fuse_seconds = 0;
  double queue_seconds = 0;  // submit -> dispatch
  double run_seconds = 0;    // backend execution (0 on a result-cache hit)
  double total_seconds = 0;  // submit -> completion
};

struct EngineOptions {
  unsigned num_workers = 2;                // scheduler threads (min 1)
  std::size_t fused_cache_capacity = 128;  // circuits; 0 disables the cache
  std::size_t result_cache_capacity = 64;  // requests; 0 disables memoization
  unsigned max_qubits = 26;     // engine-wide cap (the drivers' host cap)
  std::size_t max_pending = 1024;  // queue bound; beyond it submissions reject
  Tracer* tracer = nullptr;     // sink for backend events + engine counters
};

struct EngineMetrics {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;  // ok results
  std::uint64_t rejected = 0;   // !ok results (cap, memory, deadline, queue)
  std::uint64_t result_cache_hits = 0;
  FusedCacheStats fused_cache;
  std::uint64_t pool_hits = 0;   // summed over live backends
  std::uint64_t pool_misses = 0;
  std::size_t bytes_pooled = 0;
  std::size_t backends_created = 0;
  double p50_ms = 0;   // completion latency percentiles (submit -> done)
  double p95_ms = 0;
  double mean_ms = 0;
};

class SimulationEngine {
 public:
  explicit SimulationEngine(EngineOptions opt = {});
  // Stops accepting work, fails queued requests with "engine stopped", joins
  // the workers, and tears down the backends.
  ~SimulationEngine();

  SimulationEngine(const SimulationEngine&) = delete;
  SimulationEngine& operator=(const SimulationEngine&) = delete;

  // Enqueues a request. Never throws on bad requests: rejections come back
  // through the future as ok=false results.
  std::future<SimResult> submit(SimRequest req);

  // Synchronous convenience: submit + wait.
  SimResult run(SimRequest req);

  EngineMetrics metrics() const;

  // Writes the current metrics as "engine/..." counters into the tracer
  // passed at construction (no-op without one), so they serialize into the
  // Perfetto trace JSON next to the kernel events.
  void export_metrics() const;

 private:
  struct Job;
  struct BackendSlot;

  void worker_loop();
  void process(Job& job);
  BackendSlot& resolve_backend(const std::string& spec, Precision precision);
  static std::uint64_t result_key(const SimRequest& req);
  void record_done(const SimResult& res);
  static SimResult rejected(std::string why);

  EngineOptions opt_;
  FusedCircuitCache fused_cache_;

  mutable std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::list<Job> queue_;
  bool stop_ = false;
  std::vector<std::thread> workers_;

  mutable std::mutex backends_mu_;
  std::map<std::string, std::unique_ptr<BackendSlot>> backends_;

  mutable std::mutex results_mu_;
  std::condition_variable results_cv_;  // signals in-flight completions
  std::list<std::pair<std::uint64_t, SimResult>> result_lru_;
  std::map<std::uint64_t, std::list<std::pair<std::uint64_t, SimResult>>::iterator>
      result_index_;
  // Keys being simulated right now. A second worker dequeuing an identical
  // cacheable request waits for the first instead of simulating it again
  // (anti-stampede coalescing), then serves the cached result.
  std::set<std::uint64_t> in_flight_;

  mutable std::mutex metrics_mu_;
  std::uint64_t submitted_ = 0, completed_ = 0, rejected_ = 0;
  std::uint64_t result_cache_hits_ = 0;
  std::vector<double> latencies_ms_;
};

}  // namespace qhip::engine
