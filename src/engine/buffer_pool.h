// State-vector buffer pool for the serving engine.
//
// A long-lived backend serves a stream of requests with wildly varying qubit
// counts; allocating and faulting in a fresh 2^n-amplitude buffer per request
// is pure overhead once the same shape has been seen before. BufferPool keeps
// released buffers keyed by qubit count and hands them back to the next
// request of the same shape. Buffers carry whatever type the backend uses
// (host StateVector, DeviceStateVector, ...); the pool never constructs one
// itself — on a miss the caller builds the buffer and later releases it here.
//
// Thread-safe; per-key depth is capped so a burst of concurrent same-shape
// requests cannot park an unbounded amount of memory.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

namespace qhip::engine {

struct PoolStats {
  std::uint64_t hits = 0;      // acquire() served from the pool
  std::uint64_t misses = 0;    // acquire() had nothing pooled for the key
  std::uint64_t discarded = 0; // release() dropped a buffer (key at capacity)
  std::size_t bytes_pooled = 0;  // bytes currently parked in the pool
  std::size_t buffers_pooled = 0;
};

template <typename Buf>
class BufferPool {
 public:
  // `max_per_key`: buffers kept per qubit count (excess releases are freed).
  explicit BufferPool(std::size_t max_per_key = 2) : max_per_key_(max_per_key) {}

  // Pops a pooled buffer for `key`, or nullopt if none is parked (the caller
  // then constructs one and eventually release()s it back).
  std::optional<Buf> acquire(unsigned key) {
    std::lock_guard lk(mu_);
    auto it = pool_.find(key);
    if (it == pool_.end() || it->second.empty()) {
      ++stats_.misses;
      return std::nullopt;
    }
    Entry e = std::move(it->second.back());
    it->second.pop_back();
    ++stats_.hits;
    stats_.bytes_pooled -= e.bytes;
    --stats_.buffers_pooled;
    return std::optional<Buf>(std::move(e.buf));
  }

  // Parks `buf` for reuse by the next acquire(key). `bytes` is the buffer's
  // allocation size, for the bytes_pooled gauge.
  void release(unsigned key, Buf&& buf, std::size_t bytes) {
    std::lock_guard lk(mu_);
    auto& slot = pool_[key];
    if (slot.size() >= max_per_key_) {
      ++stats_.discarded;  // `buf` destructs here, freeing the allocation
      return;
    }
    slot.push_back(Entry{std::move(buf), bytes});
    stats_.bytes_pooled += bytes;
    ++stats_.buffers_pooled;
  }

  // Frees every pooled buffer (hit/miss counters are preserved; the freed
  // buffers count as discarded, same as capacity drops in release()).
  void clear() {
    std::lock_guard lk(mu_);
    stats_.discarded += stats_.buffers_pooled;
    pool_.clear();
    stats_.bytes_pooled = 0;
    stats_.buffers_pooled = 0;
  }

  PoolStats stats() const {
    std::lock_guard lk(mu_);
    return stats_;
  }

 private:
  struct Entry {
    Buf buf;
    std::size_t bytes;
  };

  mutable std::mutex mu_;
  std::size_t max_per_key_;
  std::map<unsigned, std::vector<Entry>> pool_;
  PoolStats stats_;
};

}  // namespace qhip::engine
