// Windowed SLO watchdog: bounded-memory latency/error-rate rules that arm
// the flight recorder's snapshot trigger.
//
// The engine feeds every completed request into observe(). Internally the
// watchdog keeps a short ring of per-epoch cells — each cell a
// prof::Histogram plus ok/error counts, split per request kind — and
// evaluates the configured rules over the merged rolling window
// (Histogram::merge), so memory stays O(window_epochs * kinds) no matter how
// long the process serves. When a rule fires, observe() returns an SloBreach
// describing why; the engine turns that into a rate-limited
// snapshot-<ts>-<reason>.trace.json dump (see SimulationEngine::
// trigger_snapshot). The rate limit lives here so repeated breaches during
// one incident produce one snapshot, not a disk-filling storm.
//
// Not internally synchronized: the engine calls observe() under its metrics
// mutex; status_text()/window()/breaches() are for the same caller.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/prof/histogram.h"

namespace qhip::engine {

// Rule scopes: index 0 aggregates every request, 1..3 follow RequestKind
// (circuit, expectation, trajectory) shifted by one.
inline constexpr int kSloKinds = 4;
inline constexpr const char* kSloKindNames[kSloKinds] = {
    "any", "circuit", "expectation", "trajectory"};

// Index for a kind name; throws qhip::Error on unknown names.
int slo_kind_index(const std::string& name);

struct SloRule {
  int kind = 0;                  // index into kSloKindNames
  double p99_ms = 0;             // fire when windowed p99 exceeds this (0 = off)
  double max_error_rate = 0;     // fire when errors/total exceeds this (0 = off)
  std::size_t min_requests = 32; // rule is quiet below this window population
};

// Parses "kind:field=value[,field=value...]" — e.g.
// "any:p99_ms=50,min_requests=64" or "circuit:error_rate=0.05". Fields:
// p99_ms, error_rate, min_requests. Throws qhip::Error on malformed input.
SloRule parse_slo_rule(const std::string& spec);

struct WatchdogOptions {
  double epoch_seconds = 1.0;          // ring granularity
  std::size_t window_epochs = 8;       // rolling window = epoch * window
  double min_trigger_interval_seconds = 30;  // snapshot rate limit
  std::vector<SloRule> rules;
};

struct SloBreach {
  std::string reason;  // filename-safe, e.g. "p99-circuit" / "errors-any"
  std::string detail;  // human-readable: observed vs. threshold
};

// Rolling-window view of one kind, for status reporting.
struct SloWindow {
  std::uint64_t total = 0;
  std::uint64_t errors = 0;
  double p50_ms = 0;
  double p99_ms = 0;
};

class SloWatchdog {
 public:
  explicit SloWatchdog(WatchdogOptions opt);

  // Feeds one completed request (kind = 1-based RequestKind index; ok =
  // served without error). Returns a breach when a rule fires and the rate
  // limiter allows it; the caller owns what happens next.
  std::optional<SloBreach> observe(int kind, double total_ms, bool ok,
                                   std::uint64_t now_us);

  // Merged rolling-window stats for a kind index (0 = any).
  SloWindow window(int kind) const;

  // Breaches returned by observe() so far. Rate-limit-suppressed repeats are
  // not counted: each increment corresponds to one snapshot trigger.
  std::uint64_t breaches() const { return breaches_; }

  // Human-readable rule + window summary for the debug endpoints.
  std::string status_text() const;

  const WatchdogOptions& options() const { return opt_; }

 private:
  struct Cell {
    prof::Histogram h = prof::latency_ms_histogram();
    std::uint64_t total = 0;
    std::uint64_t errors = 0;
  };
  struct Epoch {
    std::uint64_t start_us = 0;
    Cell kinds[kSloKinds];
  };

  void rotate(std::uint64_t now_us);
  Cell merged(int kind) const;

  WatchdogOptions opt_;
  std::vector<Epoch> epochs_;  // ring, cur_ = active epoch
  std::size_t cur_ = 0;
  bool started_ = false;
  std::uint64_t last_trigger_us_ = 0;
  bool triggered_once_ = false;
  std::uint64_t breaches_ = 0;
};

}  // namespace qhip::engine
