#include "src/engine/watchdog.h"

#include <cstdio>

#include "src/base/error.h"

namespace qhip::engine {

int slo_kind_index(const std::string& name) {
  for (int i = 0; i < kSloKinds; ++i) {
    if (name == kSloKindNames[i]) return i;
  }
  throw Error("SLO rule: unknown kind '" + name +
              "' (want any, circuit, expectation, or trajectory)");
}

SloRule parse_slo_rule(const std::string& spec) {
  const auto colon = spec.find(':');
  check(colon != std::string::npos && colon > 0,
        "SLO rule '" + spec + "': want kind:field=value[,field=value...]");
  SloRule rule;
  rule.kind = slo_kind_index(spec.substr(0, colon));

  std::size_t pos = colon + 1;
  bool any_field = false;
  while (pos < spec.size()) {
    auto comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string field = spec.substr(pos, comma - pos);
    const auto eq = field.find('=');
    check(eq != std::string::npos && eq > 0 && eq + 1 < field.size(),
          "SLO rule '" + spec + "': malformed field '" + field + "'");
    const std::string key = field.substr(0, eq);
    const std::string val = field.substr(eq + 1);
    double num = 0;
    try {
      std::size_t used = 0;
      num = std::stod(val, &used);
      check(used == val.size(), "trailing garbage");
    } catch (const std::exception&) {
      throw Error("SLO rule '" + spec + "': bad number '" + val + "' for '" +
                  key + "'");
    }
    check(num >= 0, "SLO rule '" + spec + "': '" + key + "' must be >= 0");
    if (key == "p99_ms") {
      rule.p99_ms = num;
    } else if (key == "error_rate") {
      check(num <= 1.0,
            "SLO rule '" + spec + "': error_rate is a fraction in [0, 1]");
      rule.max_error_rate = num;
    } else if (key == "min_requests") {
      rule.min_requests = static_cast<std::size_t>(num);
    } else {
      throw Error("SLO rule '" + spec + "': unknown field '" + key +
                  "' (want p99_ms, error_rate, min_requests)");
    }
    any_field = true;
    pos = comma + 1;
  }
  check(any_field && (rule.p99_ms > 0 || rule.max_error_rate > 0),
        "SLO rule '" + spec + "': need at least p99_ms or error_rate");
  return rule;
}

SloWatchdog::SloWatchdog(WatchdogOptions opt) : opt_(std::move(opt)) {
  check(opt_.epoch_seconds > 0, "SloWatchdog: epoch_seconds must be > 0");
  check(opt_.window_epochs >= 1, "SloWatchdog: window_epochs must be >= 1");
  epochs_.resize(opt_.window_epochs);
}

void SloWatchdog::rotate(std::uint64_t now_us) {
  if (!started_) {
    started_ = true;
    epochs_[cur_].start_us = now_us;
    return;
  }
  const auto epoch_us =
      static_cast<std::uint64_t>(opt_.epoch_seconds * 1e6);
  // An idle gap spanning the whole ring leaves nothing worth keeping: clear
  // every epoch and restart at now, instead of spinning the advance loop
  // once per elapsed epoch (or, worse, jumping the clock past stale cells
  // that would then be counted as recent).
  if (now_us - epochs_[cur_].start_us >=
      epoch_us * (epochs_.size() + 1)) {
    for (auto& e : epochs_) {
      e.start_us = 0;
      for (auto& cell : e.kinds) {
        cell.h.clear();
        cell.total = 0;
        cell.errors = 0;
      }
    }
    cur_ = 0;
    epochs_[cur_].start_us = now_us;
    return;
  }
  // Advance one epoch at a time (bounded by the check above) so partial
  // gaps age exactly the epochs that fell out of the window.
  while (now_us >= epochs_[cur_].start_us + epoch_us) {
    const std::uint64_t next_start = epochs_[cur_].start_us + epoch_us;
    cur_ = (cur_ + 1) % epochs_.size();
    Epoch& e = epochs_[cur_];
    e.start_us = next_start;
    for (auto& cell : e.kinds) {
      cell.h.clear();
      cell.total = 0;
      cell.errors = 0;
    }
  }
}

SloWatchdog::Cell SloWatchdog::merged(int kind) const {
  Cell out;
  for (const auto& e : epochs_) {
    const Cell& c = e.kinds[kind];
    out.h.merge(c.h);
    out.total += c.total;
    out.errors += c.errors;
  }
  return out;
}

std::optional<SloBreach> SloWatchdog::observe(int kind, double total_ms,
                                              bool ok, std::uint64_t now_us) {
  rotate(now_us);
  Epoch& e = epochs_[cur_];
  const auto record_into = [&](int k) {
    Cell& c = e.kinds[k];
    c.h.record(total_ms);
    ++c.total;
    if (!ok) ++c.errors;
  };
  record_into(0);  // "any" aggregates every request
  if (kind >= 1 && kind < kSloKinds) record_into(kind);

  for (const SloRule& rule : opt_.rules) {
    const Cell w = merged(rule.kind);
    if (w.total < rule.min_requests) continue;
    const char* kind_name = kSloKindNames[rule.kind];
    char detail[192];
    if (rule.p99_ms > 0) {
      const double p99 = w.h.quantile(0.99);
      if (p99 > rule.p99_ms) {
        std::snprintf(detail, sizeof(detail),
                      "windowed p99 %.3f ms > %.3f ms over %llu %s requests",
                      p99, rule.p99_ms,
                      static_cast<unsigned long long>(w.total), kind_name);
        if (triggered_once_ &&
            now_us < last_trigger_us_ +
                         static_cast<std::uint64_t>(
                             opt_.min_trigger_interval_seconds * 1e6)) {
          return std::nullopt;  // breach, but inside the rate-limit window
        }
        last_trigger_us_ = now_us;
        triggered_once_ = true;
        ++breaches_;
        return SloBreach{std::string("p99-") + kind_name, detail};
      }
    }
    if (rule.max_error_rate > 0) {
      const double rate =
          static_cast<double>(w.errors) / static_cast<double>(w.total);
      if (rate > rule.max_error_rate) {
        std::snprintf(detail, sizeof(detail),
                      "windowed error rate %.4f > %.4f over %llu %s requests",
                      rate, rule.max_error_rate,
                      static_cast<unsigned long long>(w.total), kind_name);
        if (triggered_once_ &&
            now_us < last_trigger_us_ +
                         static_cast<std::uint64_t>(
                             opt_.min_trigger_interval_seconds * 1e6)) {
          return std::nullopt;
        }
        last_trigger_us_ = now_us;
        triggered_once_ = true;
        ++breaches_;
        return SloBreach{std::string("errors-") + kind_name, detail};
      }
    }
  }
  return std::nullopt;
}

SloWindow SloWatchdog::window(int kind) const {
  check(kind >= 0 && kind < kSloKinds, "SloWatchdog::window: bad kind index");
  const Cell w = merged(kind);
  SloWindow out;
  out.total = w.total;
  out.errors = w.errors;
  out.p50_ms = w.h.quantile(0.50);
  out.p99_ms = w.h.quantile(0.99);
  return out;
}

std::string SloWatchdog::status_text() const {
  char line[224];
  std::snprintf(line, sizeof(line),
                "slo watchdog: %zu rule(s), window %.1fs x %zu epochs, "
                "%llu breach(es)\n",
                opt_.rules.size(), opt_.epoch_seconds, opt_.window_epochs,
                static_cast<unsigned long long>(breaches_));
  std::string out = line;
  for (const SloRule& r : opt_.rules) {
    out += "  rule " + std::string(kSloKindNames[r.kind]) + ":";
    if (r.p99_ms > 0) {
      std::snprintf(line, sizeof(line), " p99_ms<=%.3f", r.p99_ms);
      out += line;
    }
    if (r.max_error_rate > 0) {
      std::snprintf(line, sizeof(line), " error_rate<=%.4f",
                    r.max_error_rate);
      out += line;
    }
    std::snprintf(line, sizeof(line), " min_requests=%zu", r.min_requests);
    out += line;
    out += "\n";
  }
  for (int k = 0; k < kSloKinds; ++k) {
    const SloWindow w = window(k);
    if (w.total == 0 && k != 0) continue;
    std::snprintf(line, sizeof(line),
                  "  window %-11s total=%llu errors=%llu p50=%.3fms "
                  "p99=%.3fms\n",
                  kSloKindNames[k], static_cast<unsigned long long>(w.total),
                  static_cast<unsigned long long>(w.errors), w.p50_ms,
                  w.p99_ms);
    out += line;
  }
  return out;
}

}  // namespace qhip::engine
