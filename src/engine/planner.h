// Cost-model-driven backend placement with online calibration (DESIGN.md §13).
//
// A SimRequest with backend = "auto" delegates two decisions to the engine:
// WHERE to run (which backend family/instance) and HOW to fuse (max_fused in
// 2..6 and the temporal window). The planner answers both by scoring every
// (candidate backend, fusion option) pair with the calibrated roofline
// perfmodel over the *exact* fused-workload statistics, then adding the
// candidate's current load so placement is load-aware, not just
// workload-aware:
//
//   t(candidate, fusion) = raw_predict(candidate, stats(fusion))
//                          * calibration(candidate, qubit_bucket)
//                          + queued_seconds(candidate)
//
// raw_predict is perfmodel::predict_seconds over the runtime-spec bridge —
// the paper's Table 1 rooflines. Those predict the paper's hardware, not
// this serving host, so predictions are corrected online: every completed
// run reports (predicted_raw, observed) into an EWMA of the
// observed/predicted ratio, keyed hierarchically — per (backend,
// qubit-bucket, max_fused), falling back to (backend, qubit-bucket), then
// to the backend alone. The finest level matters: a single shared factor
// can rescale a backend's predictions but never REORDER its fusion
// candidates, and the launch-vs-flops tradeoff across fusion settings is
// precisely where emulation diverges from the paper's hardware. The planner
// therefore starts from the paper's relative ordering (GPU 7-9x CPU, fusion
// optimum ~4) and converges on the machine it is actually serving from.
//
// Thread-safe: plan() and observe() take an internal lock (scoring is
// arithmetic over a handful of candidates; fusion itself happens in the
// engine's FusedCircuitCache, outside the lock).
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "src/base/types.h"
#include "src/core/backend_spec.h"
#include "src/fusion/fuser.h"
#include "src/perfmodel/workload.h"

namespace qhip::engine {

struct PlannerOptions {
  // Candidate backends "auto" may place onto. Must be runnable (not kAuto).
  // The engine defaults this to {cpu, hip, a100} when the caller leaves the
  // allowlist empty (EngineOptions::planner_candidates).
  std::vector<BackendSpec> candidates;

  // Fusion sweep: max_fused in [min_fused, max_fused] (paper sweeps 2..6).
  unsigned min_fused = 2;
  unsigned max_fused = 6;

  // EWMA smoothing for the calibration ratio; higher adapts faster.
  double alpha = 0.25;

  // Qubit-bucket width for the calibration table: bucket = num_qubits /
  // bucket_qubits. 2 keeps neighbouring sizes (whose 4x time ratio is real)
  // in separate buckets without fragmenting the table.
  unsigned bucket_qubits = 2;
};

// One scored candidate, for traces and golden-decision tests.
struct PlanCandidate {
  BackendSpec backend;
  FusionOptions fusion;
  double raw_seconds = 0;         // uncalibrated roofline prediction
  double predicted_seconds = 0;   // raw * calibration factor
  double wait_seconds = 0;        // load already queued on this backend
  double calibration = 1.0;       // factor applied
  double total_seconds() const { return predicted_seconds + wait_seconds; }
};

struct PlanChoice {
  BackendSpec backend;
  FusionOptions fusion;
  double raw_seconds = 0;        // what observe() must be fed as `predicted`
  double predicted_seconds = 0;  // calibrated execute-time prediction
  double wait_seconds = 0;
  double calibration = 1.0;
  std::size_t candidates_scored = 0;
  // Every (backend, fusion) pair considered, in scoring order — exported in
  // trace details and asserted by tests; not on any hot path.
  std::vector<PlanCandidate> considered;
};

struct PlannerStats {
  std::uint64_t decisions = 0;
  std::uint64_t calibrated_decisions = 0;  // decisions that used a learned factor
  std::uint64_t observations = 0;
  double predicted_seconds_total = 0;  // calibrated, over planned decisions
  double observed_seconds_total = 0;   // over observations
  std::map<std::string, std::uint64_t> chosen;     // spec -> times picked
  std::map<std::string, double> calibration;       // "spec/q<bucket>" -> factor
};

class Planner {
 public:
  // Validates the options: at least one candidate, all runnable,
  // min_fused <= max_fused within [1, 6]. Throws qhip::Error otherwise.
  explicit Planner(PlannerOptions opt);

  // Scores every viable (candidate, max_fused, window) tuple and returns the
  // minimum-total-time choice. `stats_for` maps a FusionOptions to the fused
  // circuit's WorkloadStats (the engine passes a lambda over its
  // FusedCircuitCache, so repeated plans of a hot circuit cost hash lookups,
  // not transpiles). `queued_seconds`, when non-null, reports the predicted
  // seconds of work already queued/running per candidate (load-awareness);
  // `windows` lists the temporal windows to sweep (deduplicated; typically
  // the request's window and its double). Candidates that cannot fit
  // `num_qubits` (device memory, dist slice floor, or `engine_cap`) are
  // skipped; throws qhip::Error if nothing fits.
  PlanChoice plan(
      unsigned num_qubits, Precision precision,
      const std::vector<unsigned>& windows,
      const std::function<perfmodel::WorkloadStats(const FusionOptions&)>&
          stats_for,
      const std::function<double(const BackendSpec&)>& queued_seconds = {},
      unsigned engine_cap = 0);

  // Raw (uncalibrated) roofline prediction for `spec` — also used by the
  // engine to price explicitly-routed requests for the load map and to feed
  // observations for them.
  static double raw_predict(const BackendSpec& spec,
                            const perfmodel::WorkloadStats& stats,
                            Precision precision);

  // Online calibration: a run planned (or explicitly requested) on `spec`
  // fused at `max_fused` with raw prediction `predicted_raw` seconds
  // actually took `observed` seconds of execute time. Updates three table
  // levels — "spec/q<bucket>/f<max_fused>", "spec/q<bucket>", "spec" — so
  // one mispredicted fusion setting is corrected at the finest level after
  // a single run while coarser levels keep covering unexplored settings.
  // Ratios are clamped to [1/65536, 65536] so one absurd outlier (a
  // zero-length timer read, a stalled device) cannot poison the table;
  // honest emulation-vs-paper ratios stay inside the band.
  void observe(const BackendSpec& spec, unsigned num_qubits,
               unsigned max_fused, double predicted_raw, double observed);

  // The EWMA factor plan() would apply for `spec` at `num_qubits` fused at
  // `max_fused` (finest learned level, else coarser fallbacks, else 1.0).
  double calibration(const BackendSpec& spec, unsigned num_qubits,
                     unsigned max_fused) const;

  // Re-scores a cached PlanChoice without re-fusing: the candidate list's
  // raw_seconds depend only on the (fixed) workload, so refreshing each
  // entry's calibration factor and load term reproduces exactly what a full
  // plan() sweep would score — at the cost of a few map lookups. This is
  // what makes a per-circuit plan cache sound: cache the choice once, then
  // rescore on every hit. Counts as a decision in stats(). The returned
  // summary leaves `considered` empty (the caller keeps the cached list);
  // candidates_scored still reports the list's size.
  PlanChoice rescore(
      const PlanChoice& cached, unsigned num_qubits,
      const std::function<double(const BackendSpec&)>& queued_seconds = {});

  PlannerStats stats() const;
  const PlannerOptions& options() const { return opt_; }

 private:
  struct Ewma {
    double value = 1.0;
    std::uint64_t samples = 0;
  };

  unsigned bucket_of(unsigned num_qubits) const {
    return num_qubits / std::max(1u, opt_.bucket_qubits);
  }
  // Factor + whether it came from a learned entry. Caller holds mu_.
  std::pair<double, bool> factor_locked(const std::string& spec_key,
                                        unsigned bucket,
                                        unsigned max_fused) const;

  PlannerOptions opt_;
  mutable std::mutex mu_;
  // "spec/q<bucket>/f<max_fused>" -> EWMA of observed/raw at that fusion
  // setting; "spec/q<bucket>" and "spec" -> coarser fallbacks.
  std::map<std::string, Ewma> table_;
  PlannerStats stats_;
};

}  // namespace qhip::engine
