#include "src/engine/engine.h"

#include <algorithm>
#include <bit>
#include <utility>

#include "src/base/error.h"
#include "src/base/strings.h"
#include "src/base/timer.h"

namespace qhip::engine {

namespace {

// Results above this size are served but not memoized: a single 26-qubit
// want_state result is 1 GiB, which would make the LRU a memory bomb.
constexpr std::size_t kMaxCachedResultBytes = std::size_t{32} << 20;

void mix(std::uint64_t& h, std::uint64_t v) {
  // FNV-1a over the value's bytes, same scheme as hash_circuit.
  constexpr std::uint64_t kPrime = 0x100000001b3ull;
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= kPrime;
  }
}

std::size_t approx_result_bytes(const SimResult& r) {
  return r.samples.size() * sizeof(index_t) +
         r.measurements.size() * sizeof(index_t) +
         r.amplitudes.size() * sizeof(cplx64) + r.state.size() * sizeof(cplx64);
}

double percentile(std::vector<double> sorted, double p) {
  if (sorted.empty()) return 0;
  const double pos = p * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

}  // namespace

struct SimulationEngine::Job {
  SimRequest req;
  std::promise<SimResult> promise;
  Timer queued;  // started at submit
};

struct SimulationEngine::BackendSlot {
  std::unique_ptr<Backend> backend;
  std::mutex run_mu;  // Backend::run is not reentrant per instance
};

SimulationEngine::SimulationEngine(EngineOptions opt)
    : opt_(opt), fused_cache_(opt.fused_cache_capacity) {
  const unsigned workers = std::max(1u, opt_.num_workers);
  workers_.reserve(workers);
  for (unsigned i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

SimulationEngine::~SimulationEngine() {
  std::list<Job> orphans;
  {
    std::lock_guard lk(queue_mu_);
    stop_ = true;
    orphans.swap(queue_);
  }
  queue_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
  for (Job& job : orphans) {
    job.promise.set_value(rejected("engine stopped"));
  }
}

SimResult SimulationEngine::rejected(std::string why) {
  SimResult r;
  r.ok = false;
  r.error = std::move(why);
  return r;
}

std::future<SimResult> SimulationEngine::submit(SimRequest req) {
  Job job;
  job.req = std::move(req);
  std::future<SimResult> fut = job.promise.get_future();
  {
    std::lock_guard lk(metrics_mu_);
    ++submitted_;
  }
  bool reject_now = false;
  std::string why;
  {
    std::lock_guard lk(queue_mu_);
    if (stop_) {
      reject_now = true;
      why = "engine stopped";
    } else if (queue_.size() >= opt_.max_pending) {
      reject_now = true;
      why = strfmt("engine queue full (%zu pending)", queue_.size());
    } else {
      queue_.push_back(std::move(job));
    }
  }
  if (reject_now) {
    SimResult r = rejected(std::move(why));
    record_done(r);
    job.promise.set_value(std::move(r));
  } else {
    queue_cv_.notify_one();
  }
  return fut;
}

SimResult SimulationEngine::run(SimRequest req) {
  return submit(std::move(req)).get();
}

void SimulationEngine::worker_loop() {
  for (;;) {
    Job job;
    {
      std::unique_lock lk(queue_mu_);
      queue_cv_.wait(lk, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to drain
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    process(job);
  }
}

SimulationEngine::BackendSlot& SimulationEngine::resolve_backend(
    const std::string& spec, Precision precision) {
  const std::string key =
      spec + (precision == Precision::kSingle ? "/single" : "/double");
  std::lock_guard lk(backends_mu_);
  auto it = backends_.find(key);
  if (it == backends_.end()) {
    auto slot = std::make_unique<BackendSlot>();
    slot->backend = create_backend(spec, precision, opt_.tracer);
    it = backends_.emplace(key, std::move(slot)).first;
  }
  return *it->second;
}

std::uint64_t SimulationEngine::result_key(const SimRequest& req) {
  std::uint64_t h = hash_circuit(req.circuit);
  for (char c : req.backend) mix(h, static_cast<unsigned char>(c));
  mix(h, req.precision == Precision::kSingle ? 1 : 2);
  mix(h, req.max_fused);
  mix(h, req.window);
  mix(h, req.seed);
  mix(h, req.num_samples);
  mix(h, req.amplitude_indices.size());
  for (index_t i : req.amplitude_indices) mix(h, static_cast<std::uint64_t>(i));
  mix(h, req.want_state ? 1 : 0);
  return h;
}

void SimulationEngine::process(Job& job) {
  const SimRequest& q = job.req;
  SimResult res;
  res.queue_seconds = job.queued.seconds();
  std::uint64_t key = 0;
  bool own_flight = false;

  try {
    if (q.timeout_seconds > 0 && res.queue_seconds > q.timeout_seconds) {
      res = rejected(strfmt("deadline exceeded: %.1f ms in queue > %.1f ms timeout",
                            res.queue_seconds * 1e3, q.timeout_seconds * 1e3));
      res.queue_seconds = job.queued.seconds();
    } else if (q.circuit.num_qubits < 1) {
      res = rejected("request has no qubits");
    } else if (q.circuit.num_qubits > opt_.max_qubits) {
      res = rejected(strfmt("request uses %u qubits; engine cap is %u",
                            q.circuit.num_qubits, opt_.max_qubits));
    } else if (!is_backend_spec(q.backend)) {
      res = rejected("unknown backend '" + q.backend +
                     "' (expected cpu|hip|a100|hip:N)");
    } else {
      key = result_key(q);
      const bool cacheable =
          !q.bypass_result_cache && opt_.result_cache_capacity > 0;
      bool served_from_cache = false;
      if (cacheable) {
        std::unique_lock lk(results_mu_);
        for (;;) {
          auto it = result_index_.find(key);
          if (it != result_index_.end()) {
            result_lru_.splice(result_lru_.begin(), result_lru_, it->second);
            const double queued = res.queue_seconds;
            res = it->second->second;  // copy the cached payload
            res.result_cache_hit = true;
            res.queue_seconds = queued;
            res.run_seconds = 0;
            res.fuse_seconds = 0;
            served_from_cache = true;
            break;
          }
          if (in_flight_.count(key) == 0) {
            // We simulate this key; identical requests dequeued meanwhile
            // wait below instead of duplicating the run (anti-stampede).
            in_flight_.insert(key);
            own_flight = true;
            break;
          }
          results_cv_.wait(lk);
        }
      }

      if (!served_from_cache) {
        bool fused_hit = false;
        Timer tf;
        std::shared_ptr<const FusionResult> fused = fused_cache_.get_or_fuse(
            q.circuit, FusionOptions{q.max_fused, q.window}, &fused_hit);
        res.fuse_seconds = tf.seconds();
        res.fused_cache_hit = fused_hit;
        res.fusion = fused->stats;

        BackendSlot& slot = resolve_backend(q.backend, q.precision);
        if (q.circuit.num_qubits > slot.backend->max_qubits()) {
          res = rejected(strfmt(
              "request uses %u qubits but backend '%s' fits at most %u in "
              "device memory",
              q.circuit.num_qubits, q.backend.c_str(), slot.backend->max_qubits()));
        } else {
          BackendRunSpec rs;
          rs.seed = q.seed;
          rs.num_samples = q.num_samples;
          rs.amplitude_indices = q.amplitude_indices;
          rs.want_state = q.want_state;

          Timer tr;
          BackendRunOutput out;
          {
            std::lock_guard run_lk(slot.run_mu);
            out = slot.backend->run(fused->circuit, rs);
          }
          res.run_seconds = tr.seconds();
          res.measurements = std::move(out.measurements);
          res.samples = std::move(out.samples);
          res.amplitudes = std::move(out.amplitudes);
          res.state = std::move(out.state);
          res.counters = std::move(out.counters);
          res.ok = true;

          if (opt_.result_cache_capacity > 0 &&
              approx_result_bytes(res) <= kMaxCachedResultBytes) {
            std::lock_guard lk(results_mu_);
            auto it = result_index_.find(key);
            if (it != result_index_.end()) {
              result_lru_.erase(it->second);
              result_index_.erase(it);
            }
            result_lru_.emplace_front(key, res);
            result_index_[key] = result_lru_.begin();
            while (result_lru_.size() > opt_.result_cache_capacity) {
              result_index_.erase(result_lru_.back().first);
              result_lru_.pop_back();
            }
          }
        }
      }
    }
  } catch (const Error& e) {
    res = rejected(e.what());
  } catch (const std::exception& e) {
    res = rejected(std::string("internal error: ") + e.what());
  }

  if (own_flight) {
    // Release waiters even when the run failed — the next one becomes the
    // new owner and retries.
    std::lock_guard lk(results_mu_);
    in_flight_.erase(key);
    results_cv_.notify_all();
  }

  res.total_seconds = job.queued.seconds();
  record_done(res);
  job.promise.set_value(std::move(res));
}

void SimulationEngine::record_done(const SimResult& res) {
  std::lock_guard lk(metrics_mu_);
  if (res.ok) {
    ++completed_;
    latencies_ms_.push_back(res.total_seconds * 1e3);
  } else {
    ++rejected_;
  }
  if (res.result_cache_hit) ++result_cache_hits_;
}

EngineMetrics SimulationEngine::metrics() const {
  EngineMetrics m;
  {
    std::lock_guard lk(metrics_mu_);
    m.submitted = submitted_;
    m.completed = completed_;
    m.rejected = rejected_;
    m.result_cache_hits = result_cache_hits_;
    std::vector<double> lat = latencies_ms_;
    std::sort(lat.begin(), lat.end());
    m.p50_ms = percentile(lat, 0.50);
    m.p95_ms = percentile(lat, 0.95);
    if (!lat.empty()) {
      double sum = 0;
      for (double v : lat) sum += v;
      m.mean_ms = sum / static_cast<double>(lat.size());
    }
  }
  m.fused_cache = fused_cache_.stats();
  {
    std::lock_guard lk(backends_mu_);
    m.backends_created = backends_.size();
    for (const auto& [key, slot] : backends_) {
      const PoolStats ps = slot->backend->pool_stats();
      m.pool_hits += ps.hits;
      m.pool_misses += ps.misses;
      m.bytes_pooled += ps.bytes_pooled;
    }
  }
  return m;
}

void SimulationEngine::export_metrics() const {
  if (opt_.tracer == nullptr) return;
  const EngineMetrics m = metrics();
  Tracer& t = *opt_.tracer;
  t.set_counter("engine/requests_submitted", static_cast<double>(m.submitted));
  t.set_counter("engine/requests_completed", static_cast<double>(m.completed));
  t.set_counter("engine/requests_rejected", static_cast<double>(m.rejected));
  t.set_counter("engine/result_cache_hits",
                static_cast<double>(m.result_cache_hits));
  t.set_counter("engine/fused_cache_hit_rate", m.fused_cache.hit_rate());
  t.set_counter("engine/fused_cache_entries",
                static_cast<double>(m.fused_cache.entries));
  t.set_counter("engine/fused_cache_bytes",
                static_cast<double>(m.fused_cache.approx_bytes));
  t.set_counter("engine/pool_hits", static_cast<double>(m.pool_hits));
  t.set_counter("engine/pool_misses", static_cast<double>(m.pool_misses));
  t.set_counter("engine/bytes_pooled", static_cast<double>(m.bytes_pooled));
  t.set_counter("engine/backends_created",
                static_cast<double>(m.backends_created));
  t.set_counter("engine/latency_p50_ms", m.p50_ms);
  t.set_counter("engine/latency_p95_ms", m.p95_ms);
  t.set_counter("engine/latency_mean_ms", m.mean_ms);
}

}  // namespace qhip::engine
