#include "src/engine/engine.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <optional>
#include <thread>
#include <utility>

#include "src/base/error.h"
#include "src/base/strings.h"
#include "src/base/timer.h"
#include "src/perfmodel/workload.h"

namespace qhip::engine {

namespace {

// Results above this size are served but not memoized: a single 26-qubit
// want_state result is 1 GiB, which would make the LRU a memory bomb.
constexpr std::size_t kMaxCachedResultBytes = std::size_t{32} << 20;

void mix(std::uint64_t& h, std::uint64_t v) {
  // FNV-1a over the value's bytes, same scheme as hash_circuit.
  constexpr std::uint64_t kPrime = 0x100000001b3ull;
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= kPrime;
  }
}

void app_u64(std::string& s, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) s.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void app_f64(std::string& s, double v) {
  app_u64(s, std::bit_cast<std::uint64_t>(v));
}

void app_str(std::string& s, const std::string& v) {
  app_u64(s, v.size());
  s += v;
}

std::size_t approx_result_bytes(const SimResult& r) {
  return r.samples.size() * sizeof(index_t) +
         r.measurements.size() * sizeof(index_t) +
         r.amplitudes.size() * sizeof(cplx64) + r.state.size() * sizeof(cplx64);
}

// `sorted` must already be in ascending order (sorted once at the call
// site); taking it by reference avoids a full copy per percentile query.
double percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0;
  const double pos = p * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

SimErrorCode classify(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOutOfMemory: return SimErrorCode::kOutOfMemory;
    case ErrorCode::kBackendFault: return SimErrorCode::kBackendFault;
    case ErrorCode::kDeadlineExceeded: return SimErrorCode::kDeadlineExceeded;
    case ErrorCode::kGeneric: break;
  }
  return SimErrorCode::kInternal;
}

// Worth re-running on the same backend / degrading to the fallback?
bool transient(SimErrorCode code) {
  return code == SimErrorCode::kOutOfMemory ||
         code == SimErrorCode::kBackendFault;
}

}  // namespace

const char* to_string(SimErrorCode code) {
  switch (code) {
    case SimErrorCode::kOk: return "ok";
    case SimErrorCode::kRejected: return "rejected";
    case SimErrorCode::kOutOfMemory: return "out-of-memory";
    case SimErrorCode::kBackendFault: return "backend-fault";
    case SimErrorCode::kDeadlineExceeded: return "deadline-exceeded";
    case SimErrorCode::kInternal: return "internal";
  }
  return "unknown";
}

std::string canonical_request_summary(const SimRequest& req) {
  std::string s;
  s.reserve(64 + req.circuit.gates.size() * 96);
  app_str(s, req.backend);
  app_u64(s, req.precision == Precision::kSingle ? 1 : 2);
  app_u64(s, req.max_fused);
  app_u64(s, req.window);
  app_u64(s, req.seed);
  app_u64(s, req.num_samples);
  app_u64(s, req.amplitude_indices.size());
  for (index_t i : req.amplitude_indices) app_u64(s, static_cast<std::uint64_t>(i));
  app_u64(s, req.want_state ? 1 : 0);
  app_u64(s, req.circuit.num_qubits);
  app_u64(s, req.circuit.gates.size());
  for (const Gate& g : req.circuit.gates) {
    app_u64(s, static_cast<std::uint64_t>(g.kind));
    app_str(s, g.name);
    app_u64(s, g.time);
    app_u64(s, g.qubits.size());
    for (qubit_t q : g.qubits) app_u64(s, q);
    app_u64(s, g.controls.size());
    for (qubit_t c : g.controls) app_u64(s, c);
    app_u64(s, g.params.size());
    for (double p : g.params) app_f64(s, p);
    app_u64(s, g.matrix.dim());
    for (const cplx64& v : g.matrix.data()) {
      app_f64(s, v.real());
      app_f64(s, v.imag());
    }
  }
  return s;
}

struct SimulationEngine::Job {
  SimRequest req;
  std::promise<SimResult> promise;
  Timer queued;  // started at submit
  std::uint64_t corr = 0;       // request id = trace correlation id
  std::uint64_t submit_us = 0;  // trace timestamp of submit (Timer clock)
};

struct SimulationEngine::BackendSlot {
  std::unique_ptr<Backend> backend;
  std::mutex run_mu;  // Backend::run is not reentrant per instance
};

SimulationEngine::SimulationEngine(EngineOptions opt)
    : opt_(std::move(opt)), fused_cache_(opt_.fused_cache_capacity) {
  // The header promises "min 1"; clamp the stored options so options()
  // reports what actually runs and num_workers = 0 cannot deadlock submit.
  opt_.num_workers = std::max(1u, opt_.num_workers);
  if (opt_.enable_planner) {
    PlannerOptions po;
    std::vector<std::string> cands = opt_.planner_candidates;
    if (cands.empty()) cands = {"cpu", "hip", "a100"};
    po.candidates.reserve(cands.size());
    for (const std::string& c : cands) {
      po.candidates.push_back(BackendSpec::parse(c));
    }
    planner_ = std::make_unique<Planner>(std::move(po));
  }
  workers_.reserve(opt_.num_workers);
  for (unsigned i = 0; i < opt_.num_workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

SimulationEngine::~SimulationEngine() {
  std::list<Job> orphans;
  {
    std::lock_guard lk(queue_mu_);
    stop_ = true;
    orphans.swap(queue_);
  }
  queue_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
  for (Job& job : orphans) {
    job.promise.set_value(rejected("engine stopped"));
  }
}

SimResult SimulationEngine::rejected(std::string why, SimErrorCode code) {
  SimResult r;
  r.ok = false;
  r.code = code;
  r.error = std::move(why);
  return r;
}

void SimulationEngine::span(const char* name, std::uint64_t corr,
                            std::uint64_t ts_us, std::uint64_t dur_us,
                            std::string detail) const {
  if (opt_.tracer == nullptr || corr == 0) return;
  opt_.tracer->record(name, TraceKind::kSpan, ts_us, dur_us, span_lane(corr),
                      0, corr, std::move(detail));
}

std::future<SimResult> SimulationEngine::submit(SimRequest req) {
  Job job;
  job.req = std::move(req);
  job.corr = next_request_id_.fetch_add(1, std::memory_order_relaxed);
  job.submit_us = Timer::now_micros();
  const std::uint64_t corr = job.corr;
  const std::uint64_t submit_us = job.submit_us;
  std::future<SimResult> fut = job.promise.get_future();
  {
    std::lock_guard lk(metrics_mu_);
    ++submitted_;
  }
  bool reject_now = false;
  std::string why;
  {
    std::lock_guard lk(queue_mu_);
    if (stop_) {
      reject_now = true;
      why = "engine stopped";
    } else if (queue_.size() >= opt_.max_pending) {
      reject_now = true;
      why = strfmt("engine queue full (%zu pending)", queue_.size());
    } else {
      queue_.push_back(std::move(job));
    }
  }
  span("admit", corr, submit_us, Timer::now_micros() - submit_us,
       reject_now ? why : std::string());
  if (reject_now) {
    SimResult r = rejected(std::move(why));
    r.request_id = corr;
    record_done(r);
    job.promise.set_value(std::move(r));
  } else {
    queue_cv_.notify_one();
  }
  return fut;
}

SimResult SimulationEngine::run(SimRequest req) {
  return submit(std::move(req)).get();
}

void SimulationEngine::worker_loop() {
  for (;;) {
    Job job;
    {
      std::unique_lock lk(queue_mu_);
      queue_cv_.wait(lk, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to drain
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    process(job);
  }
}

SimulationEngine::BackendSlot& SimulationEngine::resolve_backend(
    const std::string& spec, Precision precision) {
  const std::string key =
      spec + (precision == Precision::kSingle ? "/single" : "/double");
  std::lock_guard lk(backends_mu_);
  auto it = backends_.find(key);
  if (it == backends_.end()) {
    auto slot = std::make_unique<BackendSlot>();
    slot->backend = create_backend(spec, precision, opt_.tracer, opt_.fault_spec);
    it = backends_.emplace(key, std::move(slot)).first;
  }
  return *it->second;
}

double SimulationEngine::queued_load(const std::string& spec) const {
  std::lock_guard lk(load_mu_);
  auto it = backend_load_s_.find(spec);
  return it == backend_load_s_.end() ? 0.0 : it->second;
}

void SimulationEngine::adjust_load(const std::string& spec, double delta) {
  if (delta == 0) return;
  std::lock_guard lk(load_mu_);
  double& v = backend_load_s_[spec];
  v = std::max(0.0, v + delta);
}

std::uint64_t SimulationEngine::result_key(const SimRequest& req,
                                           std::uint64_t circuit_hash) {
  std::uint64_t h = circuit_hash;
  for (char c : req.backend) mix(h, static_cast<unsigned char>(c));
  mix(h, req.precision == Precision::kSingle ? 1 : 2);
  mix(h, req.max_fused);
  mix(h, req.window);
  mix(h, req.seed);
  mix(h, req.num_samples);
  mix(h, req.amplitude_indices.size());
  for (index_t i : req.amplitude_indices) mix(h, static_cast<std::uint64_t>(i));
  mix(h, req.want_state ? 1 : 0);
  return h;
}

void SimulationEngine::count_fault(SimErrorCode code) {
  std::lock_guard lk(metrics_mu_);
  switch (code) {
    case SimErrorCode::kOutOfMemory: ++faults_oom_; break;
    case SimErrorCode::kBackendFault: ++faults_backend_; break;
    case SimErrorCode::kDeadlineExceeded: ++faults_deadline_; break;
    default: break;
  }
}

SimResult SimulationEngine::execute_with_retries(const SimRequest& q,
                                                 const std::string& spec,
                                                 const FusionOptions& fusion,
                                                 const Deadline& deadline,
                                                 std::uint64_t corr,
                                                 unsigned* attempts) {
  SimResult res;
  try {
    bool fused_hit = false;
    Timer tf;
    const std::uint64_t fuse_start_us = Timer::now_micros();
    std::shared_ptr<const FusionResult> fused =
        fused_cache_.get_or_fuse(q.circuit, fusion, &fused_hit);
    res.fuse_seconds = tf.seconds();
    res.fused_cache_hit = fused_hit;
    res.fusion = fused->stats;
    span("fuse", corr, fuse_start_us,
         static_cast<std::uint64_t>(res.fuse_seconds * 1e6),
         fused_hit ? "cache-hit" : "cache-miss");

    BackendSlot& slot = resolve_backend(spec, q.precision);
    if (q.circuit.num_qubits > slot.backend->max_qubits()) {
      // OOM-class by construction: the state cannot fit, so the fallback
      // ladder (if any) is the right next step, but retrying here is not.
      SimResult r = rejected(
          strfmt("request uses %u qubits but backend '%s' fits at most %u in "
                 "device memory",
                 q.circuit.num_qubits, spec.c_str(), slot.backend->max_qubits()),
          SimErrorCode::kOutOfMemory);
      r.backend_used = spec;
      return r;
    }

    // Price this run on the load map (and later feed its observed time back
    // to calibration) — for every backend, not just planner placements, so
    // the planner sees *all* in-flight work. Reuses the fused result above:
    // no extra fused-cache traffic.
    double raw_pred = 0;
    if (planner_) {
      try {
        raw_pred = Planner::raw_predict(
            BackendSpec::parse(spec),
            perfmodel::WorkloadStats::from_circuit(fused->circuit),
            q.precision);
      } catch (const Error&) {
        raw_pred = 0;  // un-modellable: run unpriced
      }
      adjust_load(spec, raw_pred);
    }
    struct LoadGuard {
      SimulationEngine* eng;
      const std::string& spec;
      double v;
      ~LoadGuard() {
        if (v > 0) eng->adjust_load(spec, -v);
      }
    } load_guard{this, spec, raw_pred};

    BackendRunSpec rs;
    rs.seed = q.seed;
    rs.num_samples = q.num_samples;
    rs.amplitude_indices = q.amplitude_indices;
    rs.want_state = q.want_state;
    rs.deadline = deadline;
    rs.corr = corr;

    const unsigned max_attempts = std::max(1u, opt_.max_attempts);
    double backoff = std::max(0.0, opt_.retry_backoff_seconds);
    for (unsigned attempt = 1;; ++attempt) {
      ++*attempts;
      const std::uint64_t run_start_us = Timer::now_micros();
      try {
        Timer tr;
        BackendRunOutput out;
        {
          std::lock_guard run_lk(slot.run_mu);
          out = slot.backend->run(fused->circuit, rs);
        }
        res.run_seconds = tr.seconds();
        span("execute", corr, run_start_us,
             static_cast<std::uint64_t>(res.run_seconds * 1e6),
             strfmt("attempt %u on %s: ok", attempt, spec.c_str()));
        res.measurements = std::move(out.measurements);
        res.samples = std::move(out.samples);
        res.amplitudes = std::move(out.amplitudes);
        res.state = std::move(out.state);
        res.counters = std::move(out.counters);
        res.sample_seconds = out.sample_seconds;
        res.ok = true;
        res.code = SimErrorCode::kOk;
        res.backend_used = spec;
        if (planner_ && raw_pred > 0) {
          // Sampling time is excluded: the roofline models gate application.
          planner_->observe(slot.backend->spec_info(), q.circuit.num_qubits,
                            fusion.max_fused_qubits, raw_pred,
                            res.run_seconds - res.sample_seconds);
        }
        return res;
      } catch (const CodedError& e) {
        const SimErrorCode code = classify(e.code());
        count_fault(code);
        span("execute", corr, run_start_us,
             Timer::now_micros() - run_start_us,
             strfmt("attempt %u on %s: %s", attempt, spec.c_str(),
                    to_string(code)));
        if (!transient(code) || attempt >= max_attempts || deadline.expired()) {
          SimResult r = rejected(e.what(), code);
          r.backend_used = spec;
          return r;
        }
        {
          std::lock_guard lk(metrics_mu_);
          ++retries_;
        }
        if (backoff > 0) {
          std::this_thread::sleep_for(std::chrono::duration<double>(backoff));
          backoff *= 2;
        }
      }
    }
  } catch (const Error& e) {
    // Malformed input, fusion failure, bad fault spec: not retryable.
    return rejected(e.what());
  } catch (const std::exception& e) {
    return rejected(std::string("internal error: ") + e.what(),
                    SimErrorCode::kInternal);
  }
}

void SimulationEngine::process(Job& job) {
  const SimRequest& q = job.req;
  SimResult res;
  res.queue_seconds = job.queued.seconds();
  span("queue", job.corr, job.submit_us,
       static_cast<std::uint64_t>(res.queue_seconds * 1e6));
  std::uint64_t key = 0;
  std::string summary;
  std::shared_ptr<Flight> flight;  // non-null iff this worker owns the run

  try {
    if (q.timeout_seconds > 0 && res.queue_seconds > q.timeout_seconds) {
      count_fault(SimErrorCode::kDeadlineExceeded);
      const double queued = res.queue_seconds;
      res = rejected(strfmt("deadline exceeded: %.1f ms in queue > %.1f ms timeout",
                            queued * 1e3, q.timeout_seconds * 1e3),
                     SimErrorCode::kDeadlineExceeded);
      res.queue_seconds = queued;
    } else if (q.circuit.num_qubits < 1) {
      res = rejected("request has no qubits");
    } else if (q.circuit.num_qubits > opt_.max_qubits) {
      res = rejected(strfmt("request uses %u qubits; engine cap is %u",
                            q.circuit.num_qubits, opt_.max_qubits));
    } else if (!is_backend_spec(q.backend)) {
      res = rejected("unknown backend '" + q.backend + "' (expected " +
                     backend_spec_grammar() + ")");
    } else if (!planner_ && BackendSpec::parse(q.backend).kind ==
                                BackendSpec::Kind::kAuto) {
      res = rejected(
          "backend 'auto' requires the placement planner "
          "(EngineOptions::enable_planner)");
    } else {
      // One circuit hash per request, shared by the result key and (for
      // "auto") the plan-cache key — hashing the gate matrices is the most
      // expensive per-request constant on small circuits.
      const std::uint64_t chash = hash_circuit(q.circuit);
      key = result_key(q, chash);
      const bool cacheable =
          !q.bypass_result_cache && opt_.result_cache_capacity > 0;
      bool served = false;
      if (cacheable) {
        summary = canonical_request_summary(q);
        std::unique_lock lk(results_mu_);
        for (;;) {
          auto it = result_index_.find(key);
          if (it != result_index_.end() &&
              it->second->second.summary == summary) {
            result_lru_.splice(result_lru_.begin(), result_lru_, it->second);
            const double queued = res.queue_seconds;
            res = it->second->second.result;  // copy the cached payload
            res.result_cache_hit = true;
            res.queue_seconds = queued;
            res.run_seconds = 0;
            res.fuse_seconds = 0;
            res.attempts = 0;
            served = true;
            break;
          }
          auto fit = in_flight_.find(key);
          if (fit == in_flight_.end()) {
            // We simulate this key; identical requests dequeued meanwhile
            // wait below instead of duplicating the run (anti-stampede).
            flight = std::make_shared<Flight>();
            flight->summary = summary;
            in_flight_.emplace(key, flight);
            break;
          }
          std::shared_ptr<Flight> f = fit->second;
          if (f->summary != summary) {
            // 64-bit key collision with a different request mid-flight: wait
            // it out, then re-examine (we never share its result).
            results_cv_.wait(lk, [&] { return f->done; });
            continue;
          }
          results_cv_.wait(lk, [&] { return f->done; });
          if (!f->result.ok &&
              f->result.code == SimErrorCode::kDeadlineExceeded) {
            // The owner ran out of *its* budget; ours may differ (timeouts
            // are not part of the key). Loop — likely becoming the owner.
            continue;
          }
          const double queued = res.queue_seconds;
          res = f->result;  // owner's outcome, success or failure
          res.queue_seconds = queued;
          if (res.ok) {
            res.result_cache_hit = true;
            res.run_seconds = 0;
            res.fuse_seconds = 0;
            res.attempts = 0;
          } else {
            std::lock_guard mk(metrics_mu_);
            ++coalesced_failures_;
          }
          served = true;
          break;
        }
      }

      if (!served) {
        Deadline deadline;
        if (q.timeout_seconds > 0) {
          deadline = Deadline::after(q.timeout_seconds - res.queue_seconds);
        }

        // Resolve "auto" through the planner: score every candidate backend
        // over the request's fused workload and pick backend AND fusion
        // (DESIGN.md §13). The result is cached under the *auto* key, so
        // identical auto requests coalesce and memoize like any other.
        std::string run_spec = q.backend;
        FusionOptions run_fusion = q.fusion;
        PlanChoice plan;
        bool planned = false;
        if (planner_ &&
            BackendSpec::parse(q.backend).kind == BackendSpec::Kind::kAuto) {
          const std::uint64_t plan_start_us = Timer::now_micros();
          const auto load_of = [this](const BackendSpec& s) {
            return queued_load(s.to_string());
          };
          std::uint64_t plan_key = chash;
          mix(plan_key, q.precision == Precision::kSingle ? 1 : 2);
          mix(plan_key, q.fusion.window_moments);
          std::shared_ptr<const PlanChoice> hit;
          {
            std::lock_guard lk(plan_mu_);
            auto it = plan_cache_.find(plan_key);
            if (it != plan_cache_.end()) hit = it->second;
          }
          const bool plan_cached = static_cast<bool>(hit);
          if (hit) {
            plan = planner_->rescore(*hit, q.circuit.num_qubits, load_of);
          } else {
            plan = planner_->plan(
                q.circuit.num_qubits, q.precision,
                {q.fusion.window_moments, 2 * q.fusion.window_moments},
                [this, &q](const FusionOptions& fo) {
                  bool hit = false;
                  return perfmodel::WorkloadStats::from_circuit(
                      fused_cache_.get_or_fuse(q.circuit, fo, &hit)->circuit);
                },
                load_of, opt_.max_qubits);
            std::lock_guard lk(plan_mu_);
            if (plan_cache_.size() >= 512) plan_cache_.clear();
            plan_cache_[plan_key] = std::make_shared<const PlanChoice>(plan);
          }
          run_spec = plan.backend.to_string();
          run_fusion = plan.fusion;
          planned = true;
          span("plan", job.corr, plan_start_us,
               Timer::now_micros() - plan_start_us,
               strfmt("-> %s f=%u w=%u pred=%.3fms wait=%.3fms cal=%.2f "
                      "(%zu scored%s)",
                      run_spec.c_str(),
                      plan.fusion.max_fused_qubits, plan.fusion.window_moments,
                      plan.predicted_seconds * 1e3, plan.wait_seconds * 1e3,
                      plan.calibration, plan.candidates_scored,
                      plan_cached ? ", cached" : ""));
        }

        unsigned attempts = 0;
        SimResult ex = execute_with_retries(q, run_spec, run_fusion, deadline,
                                            job.corr, &attempts);
        bool fell_back = false;
        const std::optional<BackendSpec> fb =
            BackendSpec::try_parse(opt_.fallback_backend);
        if (!ex.ok && transient(ex.code) && fb && fb->runnable() &&
            opt_.fallback_backend != run_spec) {
          ex = execute_with_retries(q, opt_.fallback_backend, run_fusion,
                                    deadline, job.corr, &attempts);
          fell_back = true;
          std::lock_guard lk(metrics_mu_);
          ++fallbacks_;
        }
        const double queued = res.queue_seconds;
        res = std::move(ex);
        res.queue_seconds = queued;
        res.attempts = attempts;
        res.fallback_used = fell_back;
        if (planned) {
          res.counters["planner/raw_seconds"] = plan.raw_seconds;
          res.counters["planner/predicted_seconds"] = plan.predicted_seconds;
          res.counters["planner/wait_seconds"] = plan.wait_seconds;
          res.counters["planner/calibration"] = plan.calibration;
          res.counters["planner/candidates_scored"] =
              static_cast<double>(plan.candidates_scored);
          res.counters["planner/max_fused"] =
              static_cast<double>(plan.fusion.max_fused_qubits);
          res.counters["planner/window"] =
              static_cast<double>(plan.fusion.window_moments);
        }

        if (res.ok && opt_.result_cache_capacity > 0 &&
            approx_result_bytes(res) <= kMaxCachedResultBytes) {
          if (summary.empty()) summary = canonical_request_summary(q);
          std::lock_guard lk(results_mu_);
          auto it = result_index_.find(key);
          if (it != result_index_.end()) {
            result_lru_.erase(it->second);
            result_index_.erase(it);
          }
          result_lru_.emplace_front(key, CacheEntry{summary, res});
          result_index_[key] = result_lru_.begin();
          while (result_lru_.size() > opt_.result_cache_capacity) {
            result_index_.erase(result_lru_.back().first);
            result_lru_.pop_back();
          }
        }
      }
    }
  } catch (const Error& e) {
    res = rejected(e.what());
  } catch (const std::exception& e) {
    res = rejected(std::string("internal error: ") + e.what(),
                   SimErrorCode::kInternal);
  }

  if (flight) {
    // Publish the outcome — success or failure — to every coalesced waiter,
    // then release the key so later requests can start fresh.
    std::lock_guard lk(results_mu_);
    flight->result = res;
    flight->done = true;
    in_flight_.erase(key);
    results_cv_.notify_all();
  }

  res.request_id = job.corr;
  res.total_seconds = job.queued.seconds();
  // Enclosing span: the flow-event anchor linking this request's trace row
  // to the kernels and memcpys its backend run produced.
  std::string outcome;
  if (!res.ok) {
    outcome = to_string(res.code);
  } else if (res.result_cache_hit) {
    outcome = "ok: cache-hit";
  } else {
    outcome = "ok on " + res.backend_used;
    if (res.fallback_used) outcome += " (fallback)";
  }
  span("request", job.corr, job.submit_us,
       static_cast<std::uint64_t>(res.total_seconds * 1e6), outcome);
  record_done(res);
  job.promise.set_value(std::move(res));
}

void SimulationEngine::record_done(const SimResult& res) {
  std::lock_guard lk(metrics_mu_);
  if (res.ok) {
    ++completed_;
    if (opt_.latency_window > 0) {
      const double ms = res.total_seconds * 1e3;
      if (latencies_ms_.size() < opt_.latency_window) {
        latencies_ms_.push_back(ms);
      } else {
        latencies_ms_[latency_next_] = ms;
        latency_next_ = (latency_next_ + 1) % opt_.latency_window;
      }
    }
    hist_queue_ms_.record(res.queue_seconds * 1e3);
    hist_total_ms_.record(res.total_seconds * 1e3);
    hist_result_bytes_.record(static_cast<double>(approx_result_bytes(res)));
    if (!res.result_cache_hit) {
      // Stage latencies and fusion width only exist for actual runs; a
      // cache hit would record misleading zeros.
      hist_fuse_ms_.record(res.fuse_seconds * 1e3);
      hist_execute_ms_.record(res.run_seconds * 1e3);
      if (res.sample_seconds > 0) {
        hist_sample_ms_.record(res.sample_seconds * 1e3);
      }
      hist_fused_gates_.record(static_cast<double>(res.fusion.output_gates));
    }
  } else {
    ++rejected_;
  }
  if (res.result_cache_hit) ++result_cache_hits_;
}

EngineMetrics SimulationEngine::metrics() const {
  EngineMetrics m;
  {
    std::lock_guard lk(metrics_mu_);
    m.submitted = submitted_;
    m.completed = completed_;
    m.rejected = rejected_;
    m.result_cache_hits = result_cache_hits_;
    m.retries = retries_;
    m.fallbacks = fallbacks_;
    m.coalesced_failures = coalesced_failures_;
    m.faults_oom = faults_oom_;
    m.faults_backend = faults_backend_;
    m.faults_deadline = faults_deadline_;
    std::vector<double> lat = latencies_ms_;
    std::sort(lat.begin(), lat.end());
    m.p50_ms = percentile(lat, 0.50);
    m.p95_ms = percentile(lat, 0.95);
    if (!lat.empty()) {
      double sum = 0;
      for (double v : lat) sum += v;
      m.mean_ms = sum / static_cast<double>(lat.size());
    }
    m.queue_ms = hist_queue_ms_;
    m.fuse_ms = hist_fuse_ms_;
    m.execute_ms = hist_execute_ms_;
    m.sample_ms = hist_sample_ms_;
    m.total_ms = hist_total_ms_;
    m.fused_gates = hist_fused_gates_;
    m.result_bytes = hist_result_bytes_;
  }
  m.fused_cache = fused_cache_.stats();
  if (planner_) {
    const PlannerStats ps = planner_->stats();
    m.planner_decisions = ps.decisions;
    m.planner_calibrated_decisions = ps.calibrated_decisions;
    m.planner_observations = ps.observations;
    m.planner_predicted_seconds = ps.predicted_seconds_total;
    m.planner_observed_seconds = ps.observed_seconds_total;
    m.planner_chosen = ps.chosen;
    m.planner_calibration = ps.calibration;
  }
  {
    std::lock_guard lk(backends_mu_);
    m.backends_created = backends_.size();
    for (const auto& [key, slot] : backends_) {
      const PoolStats ps = slot->backend->pool_stats();
      m.pool_hits += ps.hits;
      m.pool_misses += ps.misses;
      m.pool_discarded += ps.discarded;
      m.bytes_pooled += ps.bytes_pooled;
      m.buffers_pooled += ps.buffers_pooled;
    }
  }
  return m;
}

namespace {

// Trims the trailing zeros strfmt("%g") would not produce; bucket bounds
// like 0.08 and 81.92 stay short and stable across platforms.
std::string bound_label(double b) { return strfmt("%g", b); }

// One histogram as Prometheus exposition text: cumulative le buckets
// (including +Inf), then _sum and _count. `labels` is the inner label set
// without braces (e.g. "stage=\"queue\""), may be empty.
void prom_histogram(std::string& out, const std::string& family,
                    const std::string& labels, const prof::Histogram& h) {
  std::uint64_t cum = 0;
  const std::string sep = labels.empty() ? "" : ",";
  for (std::size_t i = 0; i < h.num_buckets(); ++i) {
    cum += h.bucket_count(i);
    out += strfmt("%s_bucket{%s%sle=\"%s\"} %llu\n", family.c_str(),
                  labels.c_str(), sep.c_str(),
                  bound_label(h.upper_bound(i)).c_str(),
                  static_cast<unsigned long long>(cum));
  }
  cum += h.bucket_count(h.num_buckets());
  out += strfmt("%s_bucket{%s%sle=\"+Inf\"} %llu\n", family.c_str(),
                labels.c_str(), sep.c_str(),
                static_cast<unsigned long long>(cum));
  const std::string brace = labels.empty() ? "" : "{" + labels + "}";
  out += strfmt("%s_sum%s %.9g\n", family.c_str(), brace.c_str(), h.sum());
  out += strfmt("%s_count%s %llu\n", family.c_str(), brace.c_str(),
                static_cast<unsigned long long>(h.count()));
}

void prom_counter(std::string& out, const char* name, const char* help,
                  const char* type, double v) {
  out += strfmt("# HELP %s %s\n# TYPE %s %s\n%s %.9g\n", name, help, name,
                type, name, v);
}

}  // namespace

std::string EngineMetrics::to_prom_text() const {
  std::string out;
  out.reserve(4096);
  prom_counter(out, "qhip_engine_requests_submitted", "Requests submitted",
               "counter", static_cast<double>(submitted));
  prom_counter(out, "qhip_engine_requests_completed", "Requests served ok",
               "counter", static_cast<double>(completed));
  prom_counter(out, "qhip_engine_requests_rejected",
               "Requests failed or rejected", "counter",
               static_cast<double>(rejected));
  prom_counter(out, "qhip_engine_result_cache_hits",
               "Requests served from the result cache or a coalesced flight",
               "counter", static_cast<double>(result_cache_hits));
  prom_counter(out, "qhip_engine_retries", "Backend run retries", "counter",
               static_cast<double>(retries));
  prom_counter(out, "qhip_engine_fallbacks",
               "Requests degraded to the fallback backend", "counter",
               static_cast<double>(fallbacks));
  prom_counter(out, "qhip_engine_coalesced_failures",
               "Waiters served a propagated failure", "counter",
               static_cast<double>(coalesced_failures));
  prom_counter(out, "qhip_engine_faults_oom", "Out-of-memory attempt failures",
               "counter", static_cast<double>(faults_oom));
  prom_counter(out, "qhip_engine_faults_backend",
               "Device-fault attempt failures", "counter",
               static_cast<double>(faults_backend));
  prom_counter(out, "qhip_engine_faults_deadline", "Deadline expiries",
               "counter", static_cast<double>(faults_deadline));
  prom_counter(out, "qhip_engine_fused_cache_hit_rate",
               "Fused-circuit cache hit rate", "gauge",
               fused_cache.hit_rate());
  prom_counter(out, "qhip_engine_pool_hits", "State-buffer pool hits",
               "counter", static_cast<double>(pool_hits));
  prom_counter(out, "qhip_engine_pool_misses", "State-buffer pool misses",
               "counter", static_cast<double>(pool_misses));
  prom_counter(out, "qhip_engine_pool_discarded",
               "State buffers dropped by the pools", "counter",
               static_cast<double>(pool_discarded));
  prom_counter(out, "qhip_engine_bytes_pooled", "Bytes parked in pools",
               "gauge", static_cast<double>(bytes_pooled));
  prom_counter(out, "qhip_engine_buffers_pooled", "Buffers parked in pools",
               "gauge", static_cast<double>(buffers_pooled));
  prom_counter(out, "qhip_engine_backends_created", "Live backend instances",
               "gauge", static_cast<double>(backends_created));

  prom_counter(out, "qhip_engine_planner_decisions",
               "Auto-placement decisions made", "counter",
               static_cast<double>(planner_decisions));
  prom_counter(out, "qhip_engine_planner_calibrated_decisions",
               "Decisions that used a learned calibration factor", "counter",
               static_cast<double>(planner_calibrated_decisions));
  prom_counter(out, "qhip_engine_planner_observations",
               "Calibration observations recorded", "counter",
               static_cast<double>(planner_observations));
  prom_counter(out, "qhip_engine_planner_predicted_seconds_total",
               "Calibrated predicted seconds over planner decisions",
               "counter", planner_predicted_seconds);
  prom_counter(out, "qhip_engine_planner_observed_seconds_total",
               "Observed execute seconds fed to calibration", "counter",
               planner_observed_seconds);
  if (!planner_chosen.empty()) {
    out += "# HELP qhip_engine_planner_chosen Auto placements by backend\n";
    out += "# TYPE qhip_engine_planner_chosen counter\n";
    for (const auto& [spec, n] : planner_chosen) {
      out += strfmt("qhip_engine_planner_chosen{backend=\"%s\"} %llu\n",
                    spec.c_str(), static_cast<unsigned long long>(n));
    }
  }
  if (!planner_calibration.empty()) {
    out += "# HELP qhip_engine_planner_calibration "
           "EWMA observed/predicted ratio per backend and qubit bucket\n";
    out += "# TYPE qhip_engine_planner_calibration gauge\n";
    for (const auto& [key, f] : planner_calibration) {
      // Keys are "spec/q<bucket>" (Planner::stats()).
      const std::size_t slash = key.rfind('/');
      const std::string spec = key.substr(0, slash);
      const std::string bucket =
          slash == std::string::npos ? "" : key.substr(slash + 1);
      out += strfmt(
          "qhip_engine_planner_calibration{backend=\"%s\",bucket=\"%s\"} "
          "%.9g\n",
          spec.c_str(), bucket.c_str(), f);
    }
  }

  out += "# HELP qhip_engine_stage_latency_ms Per-stage request latency\n";
  out += "# TYPE qhip_engine_stage_latency_ms histogram\n";
  const std::pair<const char*, const prof::Histogram*> stages[] = {
      {"queue", &queue_ms},   {"fuse", &fuse_ms}, {"execute", &execute_ms},
      {"sample", &sample_ms}, {"total", &total_ms}};
  for (const auto& [stage, h] : stages) {
    prom_histogram(out, "qhip_engine_stage_latency_ms",
                   strfmt("stage=\"%s\"", stage), *h);
  }
  out += "# HELP qhip_engine_fused_gates Fused gates per executed request\n";
  out += "# TYPE qhip_engine_fused_gates histogram\n";
  prom_histogram(out, "qhip_engine_fused_gates", "", fused_gates);
  out += "# HELP qhip_engine_result_bytes Result payload bytes per request\n";
  out += "# TYPE qhip_engine_result_bytes histogram\n";
  prom_histogram(out, "qhip_engine_result_bytes", "", result_bytes);
  return out;
}

void SimulationEngine::export_metrics() const {
  if (opt_.tracer == nullptr) return;
  const EngineMetrics m = metrics();
  Tracer& t = *opt_.tracer;
  t.set_counter("engine/requests_submitted", static_cast<double>(m.submitted));
  t.set_counter("engine/requests_completed", static_cast<double>(m.completed));
  t.set_counter("engine/requests_rejected", static_cast<double>(m.rejected));
  t.set_counter("engine/result_cache_hits",
                static_cast<double>(m.result_cache_hits));
  t.set_counter("engine/retries", static_cast<double>(m.retries));
  t.set_counter("engine/fallbacks", static_cast<double>(m.fallbacks));
  t.set_counter("engine/coalesced_failures",
                static_cast<double>(m.coalesced_failures));
  t.set_counter("engine/faults_oom", static_cast<double>(m.faults_oom));
  t.set_counter("engine/faults_backend", static_cast<double>(m.faults_backend));
  t.set_counter("engine/faults_deadline",
                static_cast<double>(m.faults_deadline));
  t.set_counter("engine/fused_cache_hit_rate", m.fused_cache.hit_rate());
  t.set_counter("engine/fused_cache_entries",
                static_cast<double>(m.fused_cache.entries));
  t.set_counter("engine/fused_cache_bytes",
                static_cast<double>(m.fused_cache.approx_bytes));
  t.set_counter("engine/pool_hits", static_cast<double>(m.pool_hits));
  t.set_counter("engine/pool_misses", static_cast<double>(m.pool_misses));
  t.set_counter("engine/pool_discarded", static_cast<double>(m.pool_discarded));
  t.set_counter("engine/bytes_pooled", static_cast<double>(m.bytes_pooled));
  t.set_counter("engine/buffers_pooled", static_cast<double>(m.buffers_pooled));
  t.set_counter("engine/backends_created",
                static_cast<double>(m.backends_created));
  t.set_counter("engine/latency_p50_ms", m.p50_ms);
  t.set_counter("engine/latency_p95_ms", m.p95_ms);
  t.set_counter("engine/latency_mean_ms", m.mean_ms);
  t.set_counter("engine/planner/decisions",
                static_cast<double>(m.planner_decisions));
  t.set_counter("engine/planner/calibrated_decisions",
                static_cast<double>(m.planner_calibrated_decisions));
  t.set_counter("engine/planner/observations",
                static_cast<double>(m.planner_observations));
  t.set_counter("engine/planner/predicted_seconds",
                m.planner_predicted_seconds);
  t.set_counter("engine/planner/observed_seconds", m.planner_observed_seconds);
  for (const auto& [spec, n] : m.planner_chosen) {
    t.set_counter("engine/planner/chosen/" + spec, static_cast<double>(n));
  }
  for (const auto& [key, f] : m.planner_calibration) {
    t.set_counter("engine/planner/calibration/" + key, f);
  }
  // Histogram buckets, one counter per non-empty bucket so the trace JSON
  // carries the full distributions next to the kernel timeline.
  const std::pair<const char*, const prof::Histogram*> hists[] = {
      {"queue_ms", &m.queue_ms},       {"fuse_ms", &m.fuse_ms},
      {"execute_ms", &m.execute_ms},   {"sample_ms", &m.sample_ms},
      {"total_ms", &m.total_ms},       {"fused_gates", &m.fused_gates},
      {"result_bytes", &m.result_bytes}};
  for (const auto& [name, h] : hists) {
    for (std::size_t i = 0; i <= h->num_buckets(); ++i) {
      if (h->bucket_count(i) == 0) continue;
      const std::string le = i < h->num_buckets()
                                 ? strfmt("%g", h->upper_bound(i))
                                 : std::string("inf");
      t.set_counter(strfmt("engine/hist/%s/le_%s", name, le.c_str()),
                    static_cast<double>(h->bucket_count(i)));
    }
  }
}

}  // namespace qhip::engine
