#include "src/engine/engine.h"

#include <sys/stat.h>

#include <algorithm>
#include <bit>
#include <chrono>
#include <cmath>
#include <fstream>
#include <optional>
#include <thread>
#include <utility>

#include "src/base/error.h"
#include "src/base/strings.h"
#include "src/base/timer.h"
#include "src/perfmodel/workload.h"
#include "src/prof/prom.h"

namespace qhip::engine {

namespace {

// Results above this size are served but not memoized: a single 26-qubit
// want_state result is 1 GiB, which would make the LRU a memory bomb.
constexpr std::size_t kMaxCachedResultBytes = std::size_t{32} << 20;

// Early stop needs a minimum sample before the stderr estimate means
// anything; below this many accumulated trajectories the tolerance is
// never consulted.
constexpr std::size_t kMinTrajectoriesForStop = 8;

void mix(std::uint64_t& h, std::uint64_t v) {
  // FNV-1a over the value's bytes, same scheme as hash_circuit.
  constexpr std::uint64_t kPrime = 0x100000001b3ull;
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= kPrime;
  }
}

void app_u64(std::string& s, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) s.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

void app_f64(std::string& s, double v) {
  app_u64(s, std::bit_cast<std::uint64_t>(v));
}

void app_str(std::string& s, const std::string& v) {
  app_u64(s, v.size());
  s += v;
}

std::size_t approx_result_bytes(const SimResult& r) {
  return r.samples.size() * sizeof(index_t) +
         r.measurements.size() * sizeof(index_t) +
         r.amplitudes.size() * sizeof(cplx64) +
         r.state.size() * sizeof(cplx64) +
         r.distribution.size() * sizeof(double);
}

// Standard error of the running trajectory mean over the first k ordered
// contributions (real parts; Hermitian observables have real expectations).
double stderr_of_mean(const cplx64& sum, double sumsq, std::size_t k) {
  if (k < 2) return 0;
  const double mean = sum.real() / static_cast<double>(k);
  const double var =
      std::max(0.0, (sumsq - static_cast<double>(k) * mean * mean) /
                        static_cast<double>(k - 1));
  return std::sqrt(var / static_cast<double>(k));
}

SimErrorCode classify(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOutOfMemory: return SimErrorCode::kOutOfMemory;
    case ErrorCode::kBackendFault: return SimErrorCode::kBackendFault;
    case ErrorCode::kDeadlineExceeded: return SimErrorCode::kDeadlineExceeded;
    case ErrorCode::kMalformedInput: return SimErrorCode::kRejected;
    case ErrorCode::kGeneric: break;
  }
  return SimErrorCode::kInternal;
}

// Worth re-running on the same backend / degrading to the fallback?
bool transient(SimErrorCode code) {
  return code == SimErrorCode::kOutOfMemory ||
         code == SimErrorCode::kBackendFault;
}

}  // namespace

const char* to_string(SimErrorCode code) {
  switch (code) {
    case SimErrorCode::kOk: return "ok";
    case SimErrorCode::kRejected: return "rejected";
    case SimErrorCode::kOutOfMemory: return "out-of-memory";
    case SimErrorCode::kBackendFault: return "backend-fault";
    case SimErrorCode::kDeadlineExceeded: return "deadline-exceeded";
    case SimErrorCode::kInternal: return "internal";
  }
  return "unknown";
}

const char* to_string(RequestKind kind) {
  switch (kind) {
    case RequestKind::kCircuit: return "circuit";
    case RequestKind::kExpectation: return "expectation";
    case RequestKind::kTrajectory: return "trajectory";
  }
  return "unknown";
}

std::string canonical_request_summary(const SimRequest& req) {
  std::string s;
  s.reserve(64 + req.circuit.gates.size() * 96);
  app_str(s, req.backend);
  app_u64(s, req.precision == Precision::kSingle ? 1 : 2);
  app_u64(s, req.max_fused);
  app_u64(s, req.window);
  app_u64(s, req.seed);
  app_u64(s, req.num_samples);
  app_u64(s, req.amplitude_indices.size());
  for (index_t i : req.amplitude_indices) app_u64(s, static_cast<std::uint64_t>(i));
  app_u64(s, req.want_state ? 1 : 0);
  // Workload kind and its payloads (DESIGN.md §14): the noise channel's
  // Kraus matrices and the observable's strings are part of what the result
  // is a function of, bit-exactly like the circuit matrices below.
  app_u64(s, static_cast<std::uint64_t>(req.kind));
  app_u64(s, req.num_trajectories);
  app_f64(s, req.trajectory_tolerance);
  app_str(s, req.noise.channel.name);
  app_u64(s, req.noise.channel.ops.size());
  for (const CMatrix& k : req.noise.channel.ops) {
    app_u64(s, k.dim());
    for (const cplx64& v : k.data()) {
      app_f64(s, v.real());
      app_f64(s, v.imag());
    }
  }
  app_u64(s, req.observable.strings.size());
  for (const obs::PauliString& p : req.observable.strings) {
    app_f64(s, p.coefficient.real());
    app_f64(s, p.coefficient.imag());
    app_u64(s, p.terms.size());
    for (const obs::PauliTerm& t : p.terms) {
      app_u64(s, t.qubit);
      app_u64(s, static_cast<std::uint64_t>(t.op));
    }
  }
  app_u64(s, req.circuit.num_qubits);
  app_u64(s, req.circuit.gates.size());
  for (const Gate& g : req.circuit.gates) {
    app_u64(s, static_cast<std::uint64_t>(g.kind));
    app_str(s, g.name);
    app_u64(s, g.time);
    app_u64(s, g.qubits.size());
    for (qubit_t q : g.qubits) app_u64(s, q);
    app_u64(s, g.controls.size());
    for (qubit_t c : g.controls) app_u64(s, c);
    app_u64(s, g.params.size());
    for (double p : g.params) app_f64(s, p);
    app_u64(s, g.matrix.dim());
    for (const cplx64& v : g.matrix.data()) {
      app_f64(s, v.real());
      app_f64(s, v.imag());
    }
  }
  return s;
}

struct SimulationEngine::Job {
  SimRequest req;
  std::promise<SimResult> promise;
  // Push-style completion (the serving front-end's seam). When set, the
  // result is delivered through it instead of the promise.
  CompletionFn on_done;
  Timer queued;  // started at submit
  std::uint64_t corr = 0;       // request id = trace correlation id
  std::uint64_t submit_us = 0;  // trace timestamp of submit (Timer clock)
  // Non-null for a trajectory sub-job: the worker runs sub-runs of this
  // batch instead of process() (the batch holds the promise; req is empty).
  std::shared_ptr<TrajectoryBatch> sub_batch;
};

// Shared state of one fanned-out trajectory batch (DESIGN.md §14). The
// launching worker fills the immutable section, enqueues min(N, workers)
// sub-jobs at the queue front, and returns to the pool — it never blocks on
// the batch. Sub-runs claim trajectory indices from next_run and stream
// their contributions through the reorder buffer (pending_*) so the
// accumulation happens in strict trajectory order: bit-identical to the
// serial reference loop, and the early-stop decision is a deterministic
// function of the ordered prefix. The last sub-run to exit finalizes.
struct SimulationEngine::TrajectoryBatch {
  // Immutable after launch.
  SimRequest req;
  std::shared_ptr<const FusionResult> prepared;  // normalized circuit
  std::string spec;            // resolved noise-capable backend spec
  bool observable_mode = false;
  std::size_t total = 0;       // requested trajectory count N
  double raw_pred_total = 0;   // N x per-trajectory roofline pricing
  Deadline deadline;
  std::uint64_t corr = 0;
  std::uint64_t submit_us = 0;
  std::uint64_t run_start_us = 0;
  Timer queued;     // copy of the job's submit timer (total_seconds)
  Timer run_timer;  // started at launch (run_seconds)
  std::promise<SimResult> promise;
  CompletionFn on_done;  // taken over from the job, like the promise
  std::shared_ptr<Flight> flight;  // non-null iff the request is cacheable
  std::uint64_t key = 0;
  std::string summary;
  SimResult base;  // queue/fuse fields prefilled by the launcher

  // Guarded by mu.
  std::mutex mu;
  std::size_t next_run = 0;    // next trajectory index to claim
  std::size_t next_accum = 0;  // ordered-accumulation cursor (== count done)
  std::size_t stop_at = 0;     // N, lowered once by a deterministic early stop
  std::size_t executed = 0;    // sub-runs completed (includes discarded tail)
  unsigned active_subs = 0;
  bool failed = false;
  bool early_stopped = false;
  SimErrorCode fail_code = SimErrorCode::kInternal;
  std::string fail_error;
  // Distribution mode: ordered elementwise accumulation + reorder buffer.
  std::vector<double> dist;
  std::map<std::size_t, std::vector<double>> pending_dist;
  // Observable mode: running sum / sum-of-squares + reorder buffer.
  std::map<std::size_t, cplx64> pending_vals;
  cplx64 val_sum{};
  double val_sumsq = 0;  // over real parts, for the stderr estimate
};

struct SimulationEngine::BackendSlot {
  std::unique_ptr<Backend> backend;
  std::mutex run_mu;  // Backend::run is not reentrant per instance
};

SimulationEngine::SimulationEngine(EngineOptions opt)
    : opt_(std::move(opt)), fused_cache_(opt_.fused_cache_capacity) {
  // The header promises "min 1"; clamp the stored options so options()
  // reports what actually runs and num_workers = 0 cannot deadlock submit.
  opt_.num_workers = std::max(1u, opt_.num_workers);
  latency_res_ = prof::LatencyReservoir(opt_.latency_window);
  if (opt_.flight_recorder_capacity > 0) {
    prof::FlightRecorderOptions fro;
    fro.capacity = opt_.flight_recorder_capacity;
    fro.max_events_per_request =
        std::max<std::size_t>(1, opt_.flight_recorder_events_per_request);
    recorder_ = std::make_unique<prof::FlightRecorder>(fro);
    recorder_->set_downstream(opt_.tracer);
    trace_ = &recorder_->sink();
  } else {
    trace_ = opt_.tracer;
  }
  if (!opt_.watchdog.rules.empty()) {
    watchdog_ = std::make_unique<SloWatchdog>(opt_.watchdog);
  }
  if (opt_.enable_planner) {
    PlannerOptions po;
    std::vector<std::string> cands = opt_.planner_candidates;
    if (cands.empty()) cands = {"cpu", "hip", "a100"};
    po.candidates.reserve(cands.size());
    for (const std::string& c : cands) {
      po.candidates.push_back(BackendSpec::parse(c));
    }
    planner_ = std::make_unique<Planner>(std::move(po));
  }
  workers_.reserve(opt_.num_workers);
  for (unsigned i = 0; i < opt_.num_workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

SimulationEngine::~SimulationEngine() { stop(); }

void SimulationEngine::stop() {
  // One caller drains; concurrent stop()/destructor callers block here and
  // return once the drain is complete.
  std::lock_guard stop_lk(stop_mu_);
  std::list<Job> dropped;
  {
    std::lock_guard lk(queue_mu_);
    stop_ = true;
    // Fail only *queued requests*. Trajectory sub-jobs stay: their batch was
    // already dequeued and launched — it is in-flight from the client's
    // point of view — and the workers drain sub-jobs before exiting. The
    // old path (swap the whole queue, join, then finalize orphans) could
    // deadlock: a coalesced waiter occupying a worker sleeps on the batch's
    // flight, which only completed *after* the join it was blocking.
    for (auto it = queue_.begin(); it != queue_.end();) {
      if (it->sub_batch) {
        ++it;
        continue;
      }
      const auto doomed = it++;
      dropped.splice(dropped.end(), queue_, doomed);
    }
  }
  queue_cv_.notify_all();
  for (Job& job : dropped) {
    SimResult r = rejected("engine stopped: request drained from queue");
    r.request_id = job.corr;
    r.kind = job.req.kind;
    r.total_seconds = job.queued.seconds();
    span("request", job.corr, job.submit_us,
         static_cast<std::uint64_t>(r.total_seconds * 1e6), "drained");
    record_done(r);
    deliver(job, std::move(r));
  }
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
}

void SimulationEngine::deliver(Job& job, SimResult res) {
  if (job.on_done) {
    job.on_done(std::move(res));
    return;
  }
  job.promise.set_value(std::move(res));
}

SimResult SimulationEngine::rejected(std::string why, SimErrorCode code) {
  SimResult r;
  r.ok = false;
  r.code = code;
  r.error = std::move(why);
  return r;
}

void SimulationEngine::span(const char* name, std::uint64_t corr,
                            std::uint64_t ts_us, std::uint64_t dur_us,
                            std::string detail) const {
  if (trace_ == nullptr || corr == 0) return;
  trace_->record(name, TraceKind::kSpan, ts_us, dur_us, span_lane(corr),
                 0, corr, std::move(detail));
}

std::uint64_t SimulationEngine::submit_job(Job&& job) {
  job.corr = next_request_id_.fetch_add(1, std::memory_order_relaxed);
  job.submit_us = Timer::now_micros();
  const std::uint64_t corr = job.corr;
  const std::uint64_t submit_us = job.submit_us;
  {
    std::lock_guard lk(metrics_mu_);
    ++submitted_;
  }
  bool reject_now = false;
  std::string why;
  {
    std::lock_guard lk(queue_mu_);
    if (stop_) {
      reject_now = true;
      why = "engine stopped";
    } else if (queue_.size() >= opt_.max_pending) {
      reject_now = true;
      why = strfmt("engine queue full (%zu pending)", queue_.size());
    } else {
      queue_.push_back(std::move(job));
    }
  }
  span("admit", corr, submit_us, Timer::now_micros() - submit_us,
       reject_now ? why : std::string());
  if (reject_now) {
    SimResult r = rejected(std::move(why));
    r.request_id = corr;
    r.kind = job.req.kind;
    record_done(r);
    deliver(job, std::move(r));
  } else {
    queue_cv_.notify_one();
  }
  return corr;
}

std::future<SimResult> SimulationEngine::submit(SimRequest req) {
  Job job;
  job.req = std::move(req);
  std::future<SimResult> fut = job.promise.get_future();
  submit_job(std::move(job));
  return fut;
}

std::uint64_t SimulationEngine::submit(SimRequest req, CompletionFn on_done) {
  Job job;
  job.req = std::move(req);
  job.on_done = std::move(on_done);
  return submit_job(std::move(job));
}

SimResult SimulationEngine::run(SimRequest req) {
  return submit(std::move(req)).get();
}

void SimulationEngine::worker_loop() {
  for (;;) {
    Job job;
    {
      std::unique_lock lk(queue_mu_);
      queue_cv_.wait(lk, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to drain
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    if (job.sub_batch) {
      trajectory_sub_loop(job.sub_batch);
      continue;
    }
    process(job);
  }
}

SimulationEngine::BackendSlot& SimulationEngine::resolve_backend(
    const std::string& spec, Precision precision) {
  const std::string key =
      spec + (precision == Precision::kSingle ? "/single" : "/double");
  std::lock_guard lk(backends_mu_);
  auto it = backends_.find(key);
  if (it == backends_.end()) {
    auto slot = std::make_unique<BackendSlot>();
    slot->backend = create_backend(spec, precision, trace_, opt_.fault_spec);
    it = backends_.emplace(key, std::move(slot)).first;
  }
  return *it->second;
}

double SimulationEngine::queued_load(const std::string& spec) const {
  std::lock_guard lk(load_mu_);
  auto it = backend_load_s_.find(spec);
  return it == backend_load_s_.end() ? 0.0 : it->second;
}

void SimulationEngine::adjust_load(const std::string& spec, double delta) {
  if (delta == 0) return;
  std::lock_guard lk(load_mu_);
  double& v = backend_load_s_[spec];
  v = std::max(0.0, v + delta);
}

std::uint64_t SimulationEngine::result_key(const SimRequest& req,
                                           std::uint64_t circuit_hash) {
  std::uint64_t h = circuit_hash;
  for (char c : req.backend) mix(h, static_cast<unsigned char>(c));
  mix(h, req.precision == Precision::kSingle ? 1 : 2);
  mix(h, req.max_fused);
  mix(h, req.window);
  mix(h, req.seed);
  mix(h, req.num_samples);
  mix(h, req.amplitude_indices.size());
  for (index_t i : req.amplitude_indices) mix(h, static_cast<std::uint64_t>(i));
  mix(h, req.want_state ? 1 : 0);
  mix(h, static_cast<std::uint64_t>(req.kind));
  mix(h, req.num_trajectories);
  mix(h, std::bit_cast<std::uint64_t>(req.trajectory_tolerance));
  for (char c : req.noise.channel.name) mix(h, static_cast<unsigned char>(c));
  mix(h, req.noise.channel.ops.size());
  for (const CMatrix& k : req.noise.channel.ops) {
    for (const cplx64& v : k.data()) {
      mix(h, std::bit_cast<std::uint64_t>(v.real()));
      mix(h, std::bit_cast<std::uint64_t>(v.imag()));
    }
  }
  mix(h, req.observable.strings.size());
  for (const obs::PauliString& p : req.observable.strings) {
    mix(h, std::bit_cast<std::uint64_t>(p.coefficient.real()));
    mix(h, std::bit_cast<std::uint64_t>(p.coefficient.imag()));
    for (const obs::PauliTerm& t : p.terms) {
      mix(h, t.qubit);
      mix(h, static_cast<std::uint64_t>(t.op));
    }
  }
  return h;
}

void SimulationEngine::count_fault(SimErrorCode code) {
  std::lock_guard lk(metrics_mu_);
  switch (code) {
    case SimErrorCode::kOutOfMemory: ++faults_oom_; break;
    case SimErrorCode::kBackendFault: ++faults_backend_; break;
    case SimErrorCode::kDeadlineExceeded: ++faults_deadline_; break;
    default: break;
  }
}

SimResult SimulationEngine::execute_with_retries(const SimRequest& q,
                                                 const std::string& spec,
                                                 const FusionOptions& fusion,
                                                 const Deadline& deadline,
                                                 std::uint64_t corr,
                                                 unsigned* attempts) {
  SimResult res;
  try {
    bool fused_hit = false;
    Timer tf;
    const std::uint64_t fuse_start_us = Timer::now_micros();
    std::shared_ptr<const FusionResult> fused =
        fused_cache_.get_or_fuse(q.circuit, fusion, &fused_hit);
    res.fuse_seconds = tf.seconds();
    res.fused_cache_hit = fused_hit;
    res.fusion = fused->stats;
    span("fuse", corr, fuse_start_us,
         static_cast<std::uint64_t>(res.fuse_seconds * 1e6),
         fused_hit ? "cache-hit" : "cache-miss");

    BackendSlot& slot = resolve_backend(spec, q.precision);
    if (q.circuit.num_qubits > slot.backend->max_qubits()) {
      // OOM-class by construction: the state cannot fit, so the fallback
      // ladder (if any) is the right next step, but retrying here is not.
      SimResult r = rejected(
          strfmt("request uses %u qubits but backend '%s' fits at most %u in "
                 "device memory",
                 q.circuit.num_qubits, spec.c_str(), slot.backend->max_qubits()),
          SimErrorCode::kOutOfMemory);
      r.backend_used = spec;
      return r;
    }

    // Price this run on the load map (and later feed its observed time back
    // to calibration) — for every backend, not just planner placements, so
    // the planner sees *all* in-flight work. Reuses the fused result above:
    // no extra fused-cache traffic.
    double raw_pred = 0;
    if (planner_) {
      try {
        raw_pred = Planner::raw_predict(
            BackendSpec::parse(spec),
            perfmodel::WorkloadStats::from_circuit(fused->circuit),
            q.precision);
      } catch (const Error&) {
        raw_pred = 0;  // un-modellable: run unpriced
      }
      adjust_load(spec, raw_pred);
    }
    struct LoadGuard {
      SimulationEngine* eng;
      const std::string& spec;
      double v;
      ~LoadGuard() {
        if (v > 0) eng->adjust_load(spec, -v);
      }
    } load_guard{this, spec, raw_pred};

    BackendRunSpec rs;
    rs.seed = q.seed;
    rs.num_samples = q.num_samples;
    rs.amplitude_indices = q.amplitude_indices;
    rs.want_state = q.want_state;
    rs.deadline = deadline;
    rs.corr = corr;
    // Expectation requests evaluate the observable over the final state in
    // the same backend run — the device kernel on hip backends, the host
    // path on cpu (DESIGN.md §14). `q` outlives the run.
    rs.observable =
        q.kind == RequestKind::kExpectation ? &q.observable : nullptr;

    const unsigned max_attempts = std::max(1u, opt_.max_attempts);
    double backoff = std::max(0.0, opt_.retry_backoff_seconds);
    for (unsigned attempt = 1;; ++attempt) {
      ++*attempts;
      const std::uint64_t run_start_us = Timer::now_micros();
      try {
        Timer tr;
        BackendRunOutput out;
        {
          std::lock_guard run_lk(slot.run_mu);
          out = slot.backend->run(fused->circuit, rs);
        }
        res.run_seconds = tr.seconds();
        span("execute", corr, run_start_us,
             static_cast<std::uint64_t>(res.run_seconds * 1e6),
             strfmt("attempt %u on %s: ok", attempt, spec.c_str()));
        res.measurements = std::move(out.measurements);
        res.samples = std::move(out.samples);
        res.amplitudes = std::move(out.amplitudes);
        res.state = std::move(out.state);
        res.counters = std::move(out.counters);
        res.sample_seconds = out.sample_seconds;
        for (const cplx64& e : out.expectations) res.expectation += e;
        res.ok = true;
        res.code = SimErrorCode::kOk;
        res.backend_used = spec;
        if (planner_ && raw_pred > 0) {
          // Sampling time is excluded: the roofline models gate application.
          planner_->observe(slot.backend->spec_info(), q.circuit.num_qubits,
                            fusion.max_fused_qubits, raw_pred,
                            res.run_seconds - res.sample_seconds);
        }
        return res;
      } catch (const CodedError& e) {
        const SimErrorCode code = classify(e.code());
        count_fault(code);
        span("execute", corr, run_start_us,
             Timer::now_micros() - run_start_us,
             strfmt("attempt %u on %s: %s", attempt, spec.c_str(),
                    to_string(code)));
        if (!transient(code) || attempt >= max_attempts || deadline.expired()) {
          SimResult r = rejected(e.what(), code);
          r.backend_used = spec;
          return r;
        }
        {
          std::lock_guard lk(metrics_mu_);
          ++retries_;
        }
        if (backoff > 0) {
          std::this_thread::sleep_for(std::chrono::duration<double>(backoff));
          backoff *= 2;
        }
      }
    }
  } catch (const Error& e) {
    // Malformed input, fusion failure, bad fault spec: not retryable.
    return rejected(e.what());
  } catch (const std::exception& e) {
    return rejected(std::string("internal error: ") + e.what(),
                    SimErrorCode::kInternal);
  }
}

void SimulationEngine::process(Job& job) {
  const SimRequest& q = job.req;
  SimResult res;
  res.queue_seconds = job.queued.seconds();
  span("queue", job.corr, job.submit_us,
       static_cast<std::uint64_t>(res.queue_seconds * 1e6));
  std::uint64_t key = 0;
  std::string summary;
  std::shared_ptr<Flight> flight;  // non-null iff this worker owns the run

  try {
    if (q.timeout_seconds > 0 && res.queue_seconds > q.timeout_seconds) {
      count_fault(SimErrorCode::kDeadlineExceeded);
      const double queued = res.queue_seconds;
      res = rejected(strfmt("deadline exceeded: %.1f ms in queue > %.1f ms timeout",
                            queued * 1e3, q.timeout_seconds * 1e3),
                     SimErrorCode::kDeadlineExceeded);
      res.queue_seconds = queued;
    } else if (q.circuit.num_qubits < 1) {
      res = rejected("request has no qubits");
    } else if (q.circuit.num_qubits > opt_.max_qubits) {
      res = rejected(strfmt("request uses %u qubits; engine cap is %u",
                            q.circuit.num_qubits, opt_.max_qubits));
    } else if (!is_backend_spec(q.backend)) {
      res = rejected("unknown backend '" + q.backend + "' (expected " +
                     backend_spec_grammar() + ")");
    } else if (!planner_ && BackendSpec::parse(q.backend).kind ==
                                BackendSpec::Kind::kAuto) {
      res = rejected(
          "backend 'auto' requires the placement planner "
          "(EngineOptions::enable_planner)");
    } else if (q.kind == RequestKind::kExpectation &&
               q.observable.strings.empty()) {
      res = rejected("expectation request has an empty observable");
    } else if (q.kind == RequestKind::kTrajectory && q.num_trajectories < 1) {
      res = rejected("trajectory request needs num_trajectories >= 1");
    } else if (q.kind == RequestKind::kTrajectory &&
               (q.num_samples > 0 || !q.amplitude_indices.empty() ||
                q.want_state)) {
      res = rejected(
          "trajectory requests return a mean distribution or an observable "
          "mean; samples/amplitudes/state are not available");
    } else if (q.kind == RequestKind::kTrajectory &&
               q.circuit.num_measurements() > 0) {
      res = rejected("trajectory requests do not support measurement gates");
    } else if (q.kind == RequestKind::kTrajectory &&
               BackendSpec::parse(q.backend).kind != BackendSpec::Kind::kAuto &&
               !backend_supports_noise(BackendSpec::parse(q.backend))) {
      res = rejected(strfmt(
          "backend '%s' cannot run trajectory (noise) workloads; use 'cpu' "
          "or 'auto'",
          q.backend.c_str()));
    } else {
      // Kind-specific payload validation; a throw lands in the catch below
      // as a structured rejection.
      if (q.kind != RequestKind::kCircuit && !q.observable.strings.empty()) {
        q.observable.validate(q.circuit.num_qubits);
      }
      if (q.kind == RequestKind::kTrajectory) q.noise.channel.validate();
      if (q.kind == RequestKind::kExpectation) {
        std::lock_guard lk(metrics_mu_);
        ++expectation_requests_;
      }
      // One circuit hash per request, shared by the result key and (for
      // "auto") the plan-cache key — hashing the gate matrices is the most
      // expensive per-request constant on small circuits.
      const std::uint64_t chash = hash_circuit(q.circuit);
      key = result_key(q, chash);
      const bool cacheable =
          !q.bypass_result_cache && opt_.result_cache_capacity > 0;
      bool served = false;
      if (cacheable) {
        summary = canonical_request_summary(q);
        std::unique_lock lk(results_mu_);
        for (;;) {
          auto it = result_index_.find(key);
          if (it != result_index_.end() &&
              it->second->second.summary == summary) {
            result_lru_.splice(result_lru_.begin(), result_lru_, it->second);
            const double queued = res.queue_seconds;
            res = it->second->second.result;  // copy the cached payload
            res.result_cache_hit = true;
            res.queue_seconds = queued;
            res.run_seconds = 0;
            res.fuse_seconds = 0;
            res.attempts = 0;
            served = true;
            break;
          }
          auto fit = in_flight_.find(key);
          if (fit == in_flight_.end()) {
            // We simulate this key; identical requests dequeued meanwhile
            // wait below instead of duplicating the run (anti-stampede).
            flight = std::make_shared<Flight>();
            flight->summary = summary;
            in_flight_.emplace(key, flight);
            break;
          }
          std::shared_ptr<Flight> f = fit->second;
          if (f->summary != summary) {
            // 64-bit key collision with a different request mid-flight: wait
            // it out, then re-examine (we never share its result).
            results_cv_.wait(lk, [&] { return f->done; });
            continue;
          }
          results_cv_.wait(lk, [&] { return f->done; });
          if (!f->result.ok &&
              f->result.code == SimErrorCode::kDeadlineExceeded) {
            // The owner ran out of *its* budget; ours may differ (timeouts
            // are not part of the key). Loop — likely becoming the owner.
            continue;
          }
          const double queued = res.queue_seconds;
          res = f->result;  // owner's outcome, success or failure
          res.queue_seconds = queued;
          if (res.ok) {
            res.result_cache_hit = true;
            res.run_seconds = 0;
            res.fuse_seconds = 0;
            res.attempts = 0;
          } else {
            std::lock_guard mk(metrics_mu_);
            ++coalesced_failures_;
          }
          served = true;
          break;
        }
      }

      if (!served) {
        Deadline deadline;
        if (q.timeout_seconds > 0) {
          deadline = Deadline::after(q.timeout_seconds - res.queue_seconds);
        }

        if (q.kind == RequestKind::kTrajectory) {
          // Resolve the backend (for "auto": the first noise-capable
          // candidate that fits — trajectory batches are priced as N x the
          // per-trajectory prediction, but all noise work runs host-side
          // today, so there is exactly one placement class), then fan the
          // batch out across the workers. The batch takes over the promise
          // and flight; the last sub-run completes the request.
          std::string traj_spec = q.backend;
          if (BackendSpec::parse(q.backend).kind == BackendSpec::Kind::kAuto) {
            traj_spec.clear();
            for (const BackendSpec& c : planner_->options().candidates) {
              if (backend_supports_noise(c) &&
                  backend_fits(c, q.circuit.num_qubits, q.precision)) {
                traj_spec = c.to_string();
                break;
              }
            }
          }
          if (traj_spec.empty()) {
            res = rejected(
                "backend 'auto' found no noise-capable candidate for this "
                "trajectory workload (planner_candidates needs 'cpu')");
          } else {
            launch_trajectory_batch(job, key, std::move(summary),
                                    std::move(flight), traj_spec, deadline,
                                    res.queue_seconds);
            return;
          }
        } else {
          // Resolve "auto" through the planner: score every candidate backend
          // over the request's fused workload and pick backend AND fusion
          // (DESIGN.md §13). The result is cached under the *auto* key, so
          // identical auto requests coalesce and memoize like any other.
          std::string run_spec = q.backend;
          FusionOptions run_fusion = q.fusion;
          PlanChoice plan;
          bool planned = false;
          if (planner_ &&
              BackendSpec::parse(q.backend).kind == BackendSpec::Kind::kAuto) {
            const std::uint64_t plan_start_us = Timer::now_micros();
            const auto load_of = [this](const BackendSpec& s) {
              return queued_load(s.to_string());
            };
            std::uint64_t plan_key = chash;
            mix(plan_key, q.precision == Precision::kSingle ? 1 : 2);
            mix(plan_key, q.fusion.window_moments);
            std::shared_ptr<const PlanChoice> hit;
            {
              std::lock_guard lk(plan_mu_);
              auto it = plan_cache_.find(plan_key);
              if (it != plan_cache_.end()) hit = it->second;
            }
            const bool plan_cached = static_cast<bool>(hit);
            if (hit) {
              plan = planner_->rescore(*hit, q.circuit.num_qubits, load_of);
            } else {
              plan = planner_->plan(
                  q.circuit.num_qubits, q.precision,
                  {q.fusion.window_moments, 2 * q.fusion.window_moments},
                  [this, &q](const FusionOptions& fo) {
                    bool hit = false;
                    return perfmodel::WorkloadStats::from_circuit(
                        fused_cache_.get_or_fuse(q.circuit, fo, &hit)->circuit);
                  },
                  load_of, opt_.max_qubits);
              std::lock_guard lk(plan_mu_);
              if (plan_cache_.size() >= 512) plan_cache_.clear();
              plan_cache_[plan_key] = std::make_shared<const PlanChoice>(plan);
            }
            run_spec = plan.backend.to_string();
            run_fusion = plan.fusion;
            planned = true;
            span("plan", job.corr, plan_start_us,
                 Timer::now_micros() - plan_start_us,
                 strfmt("-> %s f=%u w=%u pred=%.3fms wait=%.3fms cal=%.2f "
                        "(%zu scored%s)",
                        run_spec.c_str(),
                        plan.fusion.max_fused_qubits, plan.fusion.window_moments,
                        plan.predicted_seconds * 1e3, plan.wait_seconds * 1e3,
                        plan.calibration, plan.candidates_scored,
                        plan_cached ? ", cached" : ""));
          }

          unsigned attempts = 0;
          SimResult ex = execute_with_retries(q, run_spec, run_fusion, deadline,
                                              job.corr, &attempts);
          bool fell_back = false;
          const std::optional<BackendSpec> fb =
              BackendSpec::try_parse(opt_.fallback_backend);
          if (!ex.ok && transient(ex.code) && fb && fb->runnable() &&
              opt_.fallback_backend != run_spec) {
            ex = execute_with_retries(q, opt_.fallback_backend, run_fusion,
                                      deadline, job.corr, &attempts);
            fell_back = true;
            std::lock_guard lk(metrics_mu_);
            ++fallbacks_;
          }
          const double queued = res.queue_seconds;
          res = std::move(ex);
          res.queue_seconds = queued;
          res.attempts = attempts;
          res.fallback_used = fell_back;
          if (planned) {
            res.counters["planner/raw_seconds"] = plan.raw_seconds;
            res.counters["planner/predicted_seconds"] = plan.predicted_seconds;
            res.counters["planner/wait_seconds"] = plan.wait_seconds;
            res.counters["planner/calibration"] = plan.calibration;
            res.counters["planner/candidates_scored"] =
                static_cast<double>(plan.candidates_scored);
            res.counters["planner/max_fused"] =
                static_cast<double>(plan.fusion.max_fused_qubits);
            res.counters["planner/window"] =
                static_cast<double>(plan.fusion.window_moments);
          }

          if (res.ok && opt_.result_cache_capacity > 0 &&
              approx_result_bytes(res) <= kMaxCachedResultBytes) {
            if (summary.empty()) summary = canonical_request_summary(q);
            std::lock_guard lk(results_mu_);
            auto it = result_index_.find(key);
            if (it != result_index_.end()) {
              result_lru_.erase(it->second);
              result_index_.erase(it);
            }
            result_lru_.emplace_front(key, CacheEntry{summary, res});
            result_index_[key] = result_lru_.begin();
            while (result_lru_.size() > opt_.result_cache_capacity) {
              result_index_.erase(result_lru_.back().first);
              result_lru_.pop_back();
            }
          }
        }
      }
    }
  } catch (const Error& e) {
    res = rejected(e.what());
  } catch (const std::exception& e) {
    res = rejected(std::string("internal error: ") + e.what(),
                   SimErrorCode::kInternal);
  }

  if (flight) {
    // Publish the outcome — success or failure — to every coalesced waiter,
    // then release the key so later requests can start fresh.
    std::lock_guard lk(results_mu_);
    flight->result = res;
    flight->done = true;
    in_flight_.erase(key);
    results_cv_.notify_all();
  }

  res.request_id = job.corr;
  res.kind = q.kind;
  res.total_seconds = job.queued.seconds();
  // Enclosing span: the flow-event anchor linking this request's trace row
  // to the kernels and memcpys its backend run produced.
  std::string outcome;
  if (!res.ok) {
    outcome = to_string(res.code);
  } else if (res.result_cache_hit) {
    outcome = "ok: cache-hit";
  } else {
    outcome = "ok on " + res.backend_used;
    if (res.fallback_used) outcome += " (fallback)";
  }
  span("request", job.corr, job.submit_us,
       static_cast<std::uint64_t>(res.total_seconds * 1e6), outcome);
  record_done(res);
  deliver(job, std::move(res));
}

void SimulationEngine::launch_trajectory_batch(
    Job& job, std::uint64_t key, std::string summary,
    std::shared_ptr<Flight> flight, const std::string& spec,
    const Deadline& deadline, double queue_seconds) {
  auto batch = std::make_shared<TrajectoryBatch>();
  const SimRequest& q = job.req;
  const std::size_t n_traj = q.num_trajectories;

  // Prepare (normalize) the circuit once, shared by every sub-run. This is
  // the trajectory analogue of the fuse stage — fusion itself would compose
  // same-qubit neighbours and move the noise-insertion points, so the cache
  // holds the gate-for-gate normal form instead.
  bool prep_hit = false;
  Timer tf;
  const std::uint64_t prep_start_us = Timer::now_micros();
  batch->prepared = fused_cache_.get_or_normalize(q.circuit, &prep_hit);
  batch->base.fuse_seconds = tf.seconds();
  batch->base.fused_cache_hit = prep_hit;
  batch->base.fusion = batch->prepared->stats;
  span("fuse", job.corr, prep_start_us,
       static_cast<std::uint64_t>(batch->base.fuse_seconds * 1e6),
       prep_hit ? "normalize cache-hit" : "normalize cache-miss");

  // Price the batch as N x the per-trajectory roofline prediction so the
  // load map (and through it, "auto" placement of concurrent requests) sees
  // noisy workloads at their real weight (DESIGN.md §14).
  double raw_total = 0;
  if (planner_) {
    try {
      raw_total =
          static_cast<double>(n_traj) *
          Planner::raw_predict(
              BackendSpec::parse(spec),
              perfmodel::WorkloadStats::from_circuit(batch->prepared->circuit),
              q.precision);
    } catch (const Error&) {
      raw_total = 0;  // un-modellable: run unpriced
    }
    adjust_load(spec, raw_total);
  }

  batch->spec = spec;
  batch->observable_mode = !q.observable.strings.empty();
  batch->total = n_traj;
  batch->stop_at = n_traj;
  batch->raw_pred_total = raw_total;
  batch->deadline = deadline;
  batch->corr = job.corr;
  batch->submit_us = job.submit_us;
  batch->run_start_us = Timer::now_micros();
  batch->queued = job.queued;
  batch->key = key;
  batch->summary = std::move(summary);
  batch->flight = std::move(flight);
  batch->base.queue_seconds = queue_seconds;
  batch->promise = std::move(job.promise);
  batch->on_done = std::move(job.on_done);
  batch->req = std::move(job.req);
  if (!batch->observable_mode) {
    batch->dist.assign(pow2(batch->req.circuit.num_qubits), 0.0);
  }
  {
    std::lock_guard lk(metrics_mu_);
    ++trajectory_batches_;
  }

  const unsigned fan = static_cast<unsigned>(
      std::min<std::size_t>(n_traj, opt_.num_workers));
  batch->active_subs = fan;
  {
    std::lock_guard lk(queue_mu_);
    // Enqueued even mid-drain (stop_ set): the batch is in-flight — its
    // request was already dequeued — and the drain contract finishes
    // in-flight work. The launching worker is alive (it is running this
    // function), and the workers drain sub-jobs before exiting, so the subs
    // always run even if every other worker has already returned.
    for (unsigned i = 0; i < fan; ++i) {
      Job sub;
      sub.sub_batch = batch;
      sub.corr = batch->corr;
      // Sub-jobs jump the queue: the launching worker returns to the pool
      // rather than blocking, and draining subs first keeps coalesced
      // waiters (which occupy workers) from starving the batch they wait
      // on — the fan-out cannot deadlock even with one worker.
      queue_.push_front(std::move(sub));
    }
  }
  queue_cv_.notify_all();
}

void SimulationEngine::trajectory_sub_loop(
    const std::shared_ptr<TrajectoryBatch>& batch) {
  if (batch->req.precision == Precision::kSingle) {
    run_trajectory_subs<float>(*batch);
  } else {
    run_trajectory_subs<double>(*batch);
  }
  bool last = false;
  {
    std::lock_guard lk(batch->mu);
    last = (--batch->active_subs == 0);
  }
  if (last) finalize_trajectory_batch(*batch);
}

template <typename FP>
void SimulationEngine::run_trajectory_subs(TrajectoryBatch& b) {
  // A dedicated per-sub pool: its width fixes the fp reduction order inside
  // apply_channel / obs::expectation, so trajectory_threads = 1 reproduces
  // the serial reference bit for bit regardless of how many engine workers
  // share the batch.
  ThreadPool pool(std::max(1u, opt_.trajectory_threads));
  StateVector<FP> state(b.req.circuit.num_qubits);
  std::vector<double> contrib;
  for (;;) {
    std::size_t t;
    {
      std::lock_guard lk(b.mu);
      if (b.failed || b.next_run >= b.stop_at) return;
      t = b.next_run++;
    }
    try {
      noise::run_trajectory_prepared<FP>(b.prepared->circuit, b.req.noise,
                                         b.req.seed, t, state, pool,
                                         b.deadline);
      if (b.observable_mode) {
        const cplx64 v = obs::expectation(b.req.observable, state, pool);
        std::lock_guard lk(b.mu);
        ++b.executed;
        if (t < b.stop_at) b.pending_vals.emplace(t, v);
        // Drain the ordered prefix; every accumulation advances the running
        // mean/stderr and (deterministically) may trigger the early stop.
        while (!b.pending_vals.empty() && b.next_accum < b.stop_at &&
               b.pending_vals.begin()->first == b.next_accum) {
          const cplx64 u = b.pending_vals.begin()->second;
          b.pending_vals.erase(b.pending_vals.begin());
          b.val_sum += u;
          b.val_sumsq += u.real() * u.real();
          ++b.next_accum;
          const std::size_t k = b.next_accum;
          if (b.req.trajectory_tolerance > 0 &&
              k >= kMinTrajectoriesForStop && k < b.stop_at &&
              stderr_of_mean(b.val_sum, b.val_sumsq, k) <=
                  b.req.trajectory_tolerance) {
            b.stop_at = k;
            b.early_stopped = true;
            // Everything still pending is at index >= k: discarded.
            b.pending_vals.clear();
          }
        }
      } else {
        contrib.resize(state.size());
        for (index_t i = 0; i < state.size(); ++i) {
          contrib[i] = std::norm(cplx64(state[i].real(), state[i].imag()));
        }
        std::lock_guard lk(b.mu);
        ++b.executed;
        if (t < b.stop_at) {
          b.pending_dist.emplace(t, std::move(contrib));
          contrib = {};
        }
        // Elementwise accumulation in strict trajectory order — the same
        // addition order as the serial reference loop, hence bit-identical.
        while (!b.pending_dist.empty() && b.next_accum < b.stop_at &&
               b.pending_dist.begin()->first == b.next_accum) {
          const std::vector<double>& c = b.pending_dist.begin()->second;
          for (std::size_t i = 0; i < b.dist.size(); ++i) b.dist[i] += c[i];
          b.pending_dist.erase(b.pending_dist.begin());
          ++b.next_accum;
        }
      }
    } catch (const CodedError& e) {
      const SimErrorCode code = classify(e.code());
      count_fault(code);
      std::lock_guard lk(b.mu);
      if (!b.failed) {
        b.failed = true;
        b.fail_code = code;
        b.fail_error = e.what();
      }
      return;
    } catch (const std::exception& e) {
      std::lock_guard lk(b.mu);
      if (!b.failed) {
        b.failed = true;
        b.fail_code = SimErrorCode::kInternal;
        b.fail_error = std::string("trajectory failed: ") + e.what();
      }
      return;
    }
  }
}

void SimulationEngine::finalize_trajectory_batch(TrajectoryBatch& b) {
  // Last sub-run standing: every other accessor is gone, so the batch state
  // is ours without the lock.
  if (b.raw_pred_total > 0) adjust_load(b.spec, -b.raw_pred_total);

  const std::size_t k = b.next_accum;
  SimResult res = std::move(b.base);
  if (b.failed) {
    const double queued = res.queue_seconds;
    const double fuse = res.fuse_seconds;
    SimResult r = rejected(b.fail_error, b.fail_code);
    r.fusion = res.fusion;
    r.fused_cache_hit = res.fused_cache_hit;
    res = std::move(r);
    res.queue_seconds = queued;
    res.fuse_seconds = fuse;
    res.backend_used = b.spec;
  } else {
    res.ok = true;
    res.code = SimErrorCode::kOk;
    res.backend_used = b.spec;
    res.attempts = 1;
    res.trajectories_run = k;
    res.run_seconds = b.run_timer.seconds();
    if (b.observable_mode) {
      res.expectation = b.val_sum / static_cast<double>(k);
      res.expectation_stderr = stderr_of_mean(b.val_sum, b.val_sumsq, k);
    } else {
      res.distribution = std::move(b.dist);
      for (double& v : res.distribution) v /= static_cast<double>(k);
    }
    res.counters["trajectory/requested"] = static_cast<double>(b.total);
    res.counters["trajectory/executed"] = static_cast<double>(b.executed);
    res.counters["trajectory/early_stopped"] = b.early_stopped ? 1.0 : 0.0;
    if (planner_ && b.raw_pred_total > 0) {
      // Feed the batch wall-clock back: calibration learns the effective
      // per-trajectory rate including the fan-out speedup.
      try {
        planner_->observe(BackendSpec::parse(b.spec),
                          b.req.circuit.num_qubits, 1, b.raw_pred_total,
                          res.run_seconds);
      } catch (const Error&) {
      }
    }
    std::lock_guard lk(metrics_mu_);
    trajectories_run_ += b.executed;
    if (b.early_stopped) ++trajectory_early_stops_;
    hist_trajectories_per_batch_.record(static_cast<double>(k));
  }
  span("trajectory", b.corr, b.run_start_us,
       static_cast<std::uint64_t>(res.run_seconds * 1e6),
       strfmt("%zu/%zu trajectories on %s%s", k, b.total, b.spec.c_str(),
              b.early_stopped ? " (early stop)" : ""));

  if (res.ok && b.flight && opt_.result_cache_capacity > 0 &&
      approx_result_bytes(res) <= kMaxCachedResultBytes) {
    std::lock_guard lk(results_mu_);
    auto it = result_index_.find(b.key);
    if (it != result_index_.end()) {
      result_lru_.erase(it->second);
      result_index_.erase(it);
    }
    result_lru_.emplace_front(b.key, CacheEntry{b.summary, res});
    result_index_[b.key] = result_lru_.begin();
    while (result_lru_.size() > opt_.result_cache_capacity) {
      result_index_.erase(result_lru_.back().first);
      result_lru_.pop_back();
    }
  }
  if (b.flight) {
    std::lock_guard lk(results_mu_);
    b.flight->result = res;
    b.flight->done = true;
    in_flight_.erase(b.key);
    results_cv_.notify_all();
  }

  res.request_id = b.corr;
  res.kind = RequestKind::kTrajectory;
  res.total_seconds = b.queued.seconds();
  std::string outcome;
  if (!res.ok) {
    outcome = to_string(res.code);
  } else {
    outcome = strfmt("ok on %s (trajectory x%zu)", b.spec.c_str(), k);
  }
  span("request", b.corr, b.submit_us,
       static_cast<std::uint64_t>(res.total_seconds * 1e6), outcome);
  record_done(res);
  if (b.on_done) {
    b.on_done(std::move(res));
  } else {
    b.promise.set_value(std::move(res));
  }
}

void SimulationEngine::record_done(const SimResult& res) {
  const std::uint64_t now_us = Timer::now_micros();
  const std::size_t result_bytes = approx_result_bytes(res);
  {
    std::lock_guard lk(metrics_mu_);
    const auto exemplar = [&](const char* stage, double ms) {
      auto& e = slowest_[stage];
      if (ms > e.ms) {
        e.ms = ms;
        e.request_id = res.request_id;
      }
    };
    if (res.ok) {
      ++completed_;
      latency_res_.record(res.total_seconds * 1e3);
      hist_queue_ms_.record(res.queue_seconds * 1e3);
      hist_total_ms_.record(res.total_seconds * 1e3);
      hist_result_bytes_.record(static_cast<double>(result_bytes));
      exemplar("queue", res.queue_seconds * 1e3);
      exemplar("total", res.total_seconds * 1e3);
      if (!res.result_cache_hit) {
        // Stage latencies and fusion width only exist for actual runs; a
        // cache hit would record misleading zeros.
        hist_fuse_ms_.record(res.fuse_seconds * 1e3);
        hist_execute_ms_.record(res.run_seconds * 1e3);
        exemplar("fuse", res.fuse_seconds * 1e3);
        exemplar("execute", res.run_seconds * 1e3);
        if (res.sample_seconds > 0) {
          hist_sample_ms_.record(res.sample_seconds * 1e3);
          exemplar("sample", res.sample_seconds * 1e3);
        }
        hist_fused_gates_.record(static_cast<double>(res.fusion.output_gates));
      }
    } else {
      ++rejected_;
    }
    if (res.result_cache_hit) ++result_cache_hits_;
  }

  // Flight-recorder publication: this is what moves the request's pending
  // trace events into its ring entry, so it must run for every completion —
  // rejections included (they are exactly the requests an incident
  // investigation wants to see).
  if (recorder_) {
    prof::RequestRecord rec;
    rec.corr = res.request_id;
    rec.kind = to_string(res.kind);
    rec.backend = res.backend_used;
    if (const auto it = res.counters.find("planner/predicted_seconds");
        it != res.counters.end()) {
      double cal = 0;
      if (const auto c = res.counters.find("planner/calibration");
          c != res.counters.end()) {
        cal = c->second;
      }
      rec.planner = strfmt("predicted=%.3gs calibration=%.3g", it->second, cal);
    }
    rec.outcome = !res.ok ? to_string(res.code)
                          : (res.result_cache_hit ? "ok: cache-hit" : "ok");
    rec.ok = res.ok;
    rec.cache_hit = res.result_cache_hit;
    rec.attempts = res.attempts;
    rec.bytes = result_bytes;
    const auto total_us = static_cast<std::uint64_t>(res.total_seconds * 1e6);
    rec.submit_us = now_us > total_us ? now_us - total_us : 0;
    rec.queue_ms = res.queue_seconds * 1e3;
    rec.fuse_ms = res.fuse_seconds * 1e3;
    rec.execute_ms = res.run_seconds * 1e3;
    rec.sample_ms = res.sample_seconds * 1e3;
    rec.total_ms = res.total_seconds * 1e3;
    recorder_->record_request(std::move(rec));
  }

  if (watchdog_) {
    std::optional<SloBreach> breach;
    {
      std::lock_guard lk(metrics_mu_);
      breach = watchdog_->observe(static_cast<int>(res.kind) + 1,
                                  res.total_seconds * 1e3, res.ok, now_us);
      if (breach) ++slo_breaches_;
    }
    if (breach) {
      const std::string path = trigger_snapshot(breach->reason);
      if (trace_ != nullptr) {
        trace_->set_counter("engine/slo_breaches",
                            static_cast<double>(watchdog_->breaches()));
      }
      (void)path;
    }
  }
}

std::string SimulationEngine::debug_text() const {
  std::string out;
  if (recorder_) {
    out += recorder_->text_dump();
  } else {
    out += "flight recorder disabled\n";
  }
  if (watchdog_) {
    std::lock_guard lk(metrics_mu_);  // watchdog_ is driven under this lock
    out += watchdog_->status_text();
    if (snapshots_written_ > 0) {
      out += "  last snapshot: " + last_snapshot_path_ + "\n";
    }
  }
  return out;
}

std::string SimulationEngine::trigger_snapshot(const std::string& reason,
                                               const std::string& dir) {
  if (!recorder_) return {};
  const std::string& target = dir.empty() ? opt_.snapshot_dir : dir;
  if (target.empty()) return {};
  // Filename-safe reason: the watchdog emits safe reasons already, but the
  // debug endpoint accepts caller-provided ones.
  std::string safe;
  for (char c : reason) {
    const bool ok_char = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                         (c >= '0' && c <= '9') || c == '-' || c == '_';
    safe += ok_char ? c : '-';
  }
  if (safe.empty()) safe = "manual";
  ::mkdir(target.c_str(), 0755);  // best-effort; EEXIST is the common case
  const std::string stem =
      target + "/snapshot-" + std::to_string(Timer::now_micros()) + "-" + safe;
  const std::string trace_path = stem + ".trace.json";
  try {
    recorder_->write_snapshot(trace_path, reason);
    std::ofstream txt(stem + ".flightrec.txt", std::ios::binary);
    if (txt.good()) {
      const std::string dump = debug_text();
      txt.write(dump.data(), static_cast<std::streamsize>(dump.size()));
    }
  } catch (const std::exception&) {
    return {};  // best-effort: a full disk must not take the engine down
  }
  std::uint64_t written;
  {
    std::lock_guard lk(metrics_mu_);
    written = ++snapshots_written_;
    last_snapshot_path_ = trace_path;
  }
  if (trace_ != nullptr) {
    trace_->set_counter("engine/snapshots_written",
                        static_cast<double>(written));
  }
  return trace_path;
}

EngineMetrics SimulationEngine::metrics() const {
  EngineMetrics m;
  {
    std::lock_guard lk(metrics_mu_);
    m.submitted = submitted_;
    m.completed = completed_;
    m.rejected = rejected_;
    m.result_cache_hits = result_cache_hits_;
    m.retries = retries_;
    m.fallbacks = fallbacks_;
    m.coalesced_failures = coalesced_failures_;
    m.faults_oom = faults_oom_;
    m.faults_backend = faults_backend_;
    m.faults_deadline = faults_deadline_;
    m.expectation_requests = expectation_requests_;
    m.trajectory_batches = trajectory_batches_;
    m.trajectories_run = trajectories_run_;
    m.trajectory_early_stops = trajectory_early_stops_;
    m.trajectories_per_batch = hist_trajectories_per_batch_;
    const std::vector<double> lat = latency_res_.sorted();
    m.p50_ms = prof::percentile_sorted(lat, 0.50);
    m.p95_ms = prof::percentile_sorted(lat, 0.95);
    m.mean_ms = latency_res_.mean();
    m.slo_breaches = slo_breaches_;
    m.snapshots_written = snapshots_written_;
    m.last_snapshot_path = last_snapshot_path_;
    m.exemplars = slowest_;
    m.queue_ms = hist_queue_ms_;
    m.fuse_ms = hist_fuse_ms_;
    m.execute_ms = hist_execute_ms_;
    m.sample_ms = hist_sample_ms_;
    m.total_ms = hist_total_ms_;
    m.fused_gates = hist_fused_gates_;
    m.result_bytes = hist_result_bytes_;
  }
  m.fused_cache = fused_cache_.stats();
  if (planner_) {
    const PlannerStats ps = planner_->stats();
    m.planner_decisions = ps.decisions;
    m.planner_calibrated_decisions = ps.calibrated_decisions;
    m.planner_observations = ps.observations;
    m.planner_predicted_seconds = ps.predicted_seconds_total;
    m.planner_observed_seconds = ps.observed_seconds_total;
    m.planner_chosen = ps.chosen;
    m.planner_calibration = ps.calibration;
  }
  {
    std::lock_guard lk(backends_mu_);
    m.backends_created = backends_.size();
    for (const auto& [key, slot] : backends_) {
      const PoolStats ps = slot->backend->pool_stats();
      m.pool_hits += ps.hits;
      m.pool_misses += ps.misses;
      m.pool_discarded += ps.discarded;
      m.bytes_pooled += ps.bytes_pooled;
      m.buffers_pooled += ps.buffers_pooled;
    }
  }
  return m;
}

namespace {

// Trims the trailing zeros strfmt("%g") would not produce; bucket bounds
// like 0.08 and 81.92 stay short and stable across platforms.
std::string bound_label(double b) { return strfmt("%g", b); }

// One histogram as Prometheus exposition text: cumulative le buckets
// (including +Inf), then _sum and _count. `labels` is the inner label set
// without braces (e.g. "stage=\"queue\""), may be empty.
void prom_histogram(std::string& out, const std::string& family,
                    const std::string& labels, const prof::Histogram& h) {
  std::uint64_t cum = 0;
  const std::string sep = labels.empty() ? "" : ",";
  for (std::size_t i = 0; i < h.num_buckets(); ++i) {
    cum += h.bucket_count(i);
    out += strfmt("%s_bucket{%s%sle=\"%s\"} %llu\n", family.c_str(),
                  labels.c_str(), sep.c_str(),
                  bound_label(h.upper_bound(i)).c_str(),
                  static_cast<unsigned long long>(cum));
  }
  cum += h.bucket_count(h.num_buckets());
  out += strfmt("%s_bucket{%s%sle=\"+Inf\"} %llu\n", family.c_str(),
                labels.c_str(), sep.c_str(),
                static_cast<unsigned long long>(cum));
  const std::string brace = labels.empty() ? "" : "{" + labels + "}";
  out += strfmt("%s_sum%s %.9g\n", family.c_str(), brace.c_str(), h.sum());
  out += strfmt("%s_count%s %llu\n", family.c_str(), brace.c_str(),
                static_cast<unsigned long long>(h.count()));
}

void prom_counter(std::string& out, const char* name, const char* help,
                  const char* type, double v) {
  out += strfmt("# HELP %s %s\n# TYPE %s %s\n%s %.9g\n", name, help, name,
                type, name, v);
}

}  // namespace

std::string EngineMetrics::to_prom_text() const {
  std::string out;
  out.reserve(4096);
  prom_counter(out, "qhip_engine_requests_submitted", "Requests submitted",
               "counter", static_cast<double>(submitted));
  prom_counter(out, "qhip_engine_requests_completed", "Requests served ok",
               "counter", static_cast<double>(completed));
  prom_counter(out, "qhip_engine_requests_rejected",
               "Requests failed or rejected", "counter",
               static_cast<double>(rejected));
  prom_counter(out, "qhip_engine_result_cache_hits",
               "Requests served from the result cache or a coalesced flight",
               "counter", static_cast<double>(result_cache_hits));
  prom_counter(out, "qhip_engine_retries", "Backend run retries", "counter",
               static_cast<double>(retries));
  prom_counter(out, "qhip_engine_fallbacks",
               "Requests degraded to the fallback backend", "counter",
               static_cast<double>(fallbacks));
  prom_counter(out, "qhip_engine_coalesced_failures",
               "Waiters served a propagated failure", "counter",
               static_cast<double>(coalesced_failures));
  prom_counter(out, "qhip_engine_faults_oom", "Out-of-memory attempt failures",
               "counter", static_cast<double>(faults_oom));
  prom_counter(out, "qhip_engine_faults_backend",
               "Device-fault attempt failures", "counter",
               static_cast<double>(faults_backend));
  prom_counter(out, "qhip_engine_faults_deadline", "Deadline expiries",
               "counter", static_cast<double>(faults_deadline));
  prom_counter(out, "qhip_engine_expectation_requests",
               "Expectation-kind requests admitted", "counter",
               static_cast<double>(expectation_requests));
  prom_counter(out, "qhip_engine_trajectory_batches",
               "Trajectory batches launched", "counter",
               static_cast<double>(trajectory_batches));
  prom_counter(out, "qhip_engine_trajectories_run",
               "Individual trajectories executed (including any discarded "
               "past an early stop)",
               "counter", static_cast<double>(trajectories_run));
  prom_counter(out, "qhip_engine_trajectory_early_stops",
               "Trajectory batches stopped early by tolerance", "counter",
               static_cast<double>(trajectory_early_stops));
  prom_counter(out, "qhip_engine_fused_cache_hit_rate",
               "Fused-circuit cache hit rate", "gauge",
               fused_cache.hit_rate());
  prom_counter(out, "qhip_engine_pool_hits", "State-buffer pool hits",
               "counter", static_cast<double>(pool_hits));
  prom_counter(out, "qhip_engine_pool_misses", "State-buffer pool misses",
               "counter", static_cast<double>(pool_misses));
  prom_counter(out, "qhip_engine_pool_discarded",
               "State buffers dropped by the pools", "counter",
               static_cast<double>(pool_discarded));
  prom_counter(out, "qhip_engine_bytes_pooled", "Bytes parked in pools",
               "gauge", static_cast<double>(bytes_pooled));
  prom_counter(out, "qhip_engine_buffers_pooled", "Buffers parked in pools",
               "gauge", static_cast<double>(buffers_pooled));
  prom_counter(out, "qhip_engine_backends_created", "Live backend instances",
               "gauge", static_cast<double>(backends_created));

  prom_counter(out, "qhip_engine_planner_decisions",
               "Auto-placement decisions made", "counter",
               static_cast<double>(planner_decisions));
  prom_counter(out, "qhip_engine_planner_calibrated_decisions",
               "Decisions that used a learned calibration factor", "counter",
               static_cast<double>(planner_calibrated_decisions));
  prom_counter(out, "qhip_engine_planner_observations",
               "Calibration observations recorded", "counter",
               static_cast<double>(planner_observations));
  prom_counter(out, "qhip_engine_planner_predicted_seconds_total",
               "Calibrated predicted seconds over planner decisions",
               "counter", planner_predicted_seconds);
  prom_counter(out, "qhip_engine_planner_observed_seconds_total",
               "Observed execute seconds fed to calibration", "counter",
               planner_observed_seconds);
  if (!planner_chosen.empty()) {
    out += "# HELP qhip_engine_planner_chosen Auto placements by backend\n";
    out += "# TYPE qhip_engine_planner_chosen counter\n";
    for (const auto& [spec, n] : planner_chosen) {
      out += strfmt("qhip_engine_planner_chosen{backend=\"%s\"} %llu\n",
                    prof::prom_escape_label(spec).c_str(),
                    static_cast<unsigned long long>(n));
    }
  }
  if (!planner_calibration.empty()) {
    out += "# HELP qhip_engine_planner_calibration "
           "EWMA observed/predicted ratio per backend and qubit bucket\n";
    out += "# TYPE qhip_engine_planner_calibration gauge\n";
    for (const auto& [key, f] : planner_calibration) {
      // Keys are "spec/q<bucket>" (Planner::stats()).
      const std::size_t slash = key.rfind('/');
      const std::string spec = key.substr(0, slash);
      const std::string bucket =
          slash == std::string::npos ? "" : key.substr(slash + 1);
      out += strfmt(
          "qhip_engine_planner_calibration{backend=\"%s\",bucket=\"%s\"} "
          "%.9g\n",
          prof::prom_escape_label(spec).c_str(),
          prof::prom_escape_label(bucket).c_str(), f);
    }
  }

  prom_counter(out, "qhip_engine_slo_breaches",
               "SLO watchdog breaches (each one armed a snapshot trigger)",
               "counter", static_cast<double>(slo_breaches));
  prom_counter(out, "qhip_engine_snapshots_written",
               "Flight-recorder snapshots written to the snapshot dir",
               "counter", static_cast<double>(snapshots_written));

  out += "# HELP qhip_engine_stage_latency_ms Per-stage request latency\n";
  out += "# TYPE qhip_engine_stage_latency_ms histogram\n";
  const std::pair<const char*, const prof::Histogram*> stages[] = {
      {"queue", &queue_ms},   {"fuse", &fuse_ms}, {"execute", &execute_ms},
      {"sample", &sample_ms}, {"total", &total_ms}};
  for (const auto& [stage, h] : stages) {
    prom_histogram(out, "qhip_engine_stage_latency_ms",
                   strfmt("stage=\"%s\"", stage), *h);
    // Exemplar-style annotation: text-format 0.0.4 has no native exemplars,
    // so the slowest request behind each stage family rides along as a
    // comment line scrapers ignore and humans grep (corr resolves in
    // /debug/requests or any flight-recorder snapshot).
    if (const auto it = exemplars.find(stage); it != exemplars.end()) {
      out += strfmt(
          "# EXEMPLAR qhip_engine_stage_latency_ms{stage=\"%s\"} corr=%llu "
          "value_ms=%.9g\n",
          stage, static_cast<unsigned long long>(it->second.request_id),
          it->second.ms);
    }
  }
  out += "# HELP qhip_engine_fused_gates Fused gates per executed request\n";
  out += "# TYPE qhip_engine_fused_gates histogram\n";
  prom_histogram(out, "qhip_engine_fused_gates", "", fused_gates);
  out += "# HELP qhip_engine_result_bytes Result payload bytes per request\n";
  out += "# TYPE qhip_engine_result_bytes histogram\n";
  prom_histogram(out, "qhip_engine_result_bytes", "", result_bytes);
  out += "# HELP qhip_engine_trajectories_per_batch "
         "Accumulated trajectories per served batch\n";
  out += "# TYPE qhip_engine_trajectories_per_batch histogram\n";
  prom_histogram(out, "qhip_engine_trajectories_per_batch", "",
                 trajectories_per_batch);
  return out;
}

void SimulationEngine::export_metrics() const {
  if (opt_.tracer == nullptr) return;
  const EngineMetrics m = metrics();
  Tracer& t = *opt_.tracer;
  t.set_counter("engine/requests_submitted", static_cast<double>(m.submitted));
  t.set_counter("engine/requests_completed", static_cast<double>(m.completed));
  t.set_counter("engine/requests_rejected", static_cast<double>(m.rejected));
  t.set_counter("engine/result_cache_hits",
                static_cast<double>(m.result_cache_hits));
  t.set_counter("engine/retries", static_cast<double>(m.retries));
  t.set_counter("engine/fallbacks", static_cast<double>(m.fallbacks));
  t.set_counter("engine/coalesced_failures",
                static_cast<double>(m.coalesced_failures));
  t.set_counter("engine/faults_oom", static_cast<double>(m.faults_oom));
  t.set_counter("engine/faults_backend", static_cast<double>(m.faults_backend));
  t.set_counter("engine/faults_deadline",
                static_cast<double>(m.faults_deadline));
  t.set_counter("engine/expectation_requests",
                static_cast<double>(m.expectation_requests));
  t.set_counter("engine/trajectory_batches",
                static_cast<double>(m.trajectory_batches));
  t.set_counter("engine/trajectories_run",
                static_cast<double>(m.trajectories_run));
  t.set_counter("engine/trajectory_early_stops",
                static_cast<double>(m.trajectory_early_stops));
  t.set_counter("engine/fused_cache_hit_rate", m.fused_cache.hit_rate());
  t.set_counter("engine/fused_cache_entries",
                static_cast<double>(m.fused_cache.entries));
  t.set_counter("engine/fused_cache_bytes",
                static_cast<double>(m.fused_cache.approx_bytes));
  t.set_counter("engine/pool_hits", static_cast<double>(m.pool_hits));
  t.set_counter("engine/pool_misses", static_cast<double>(m.pool_misses));
  t.set_counter("engine/pool_discarded", static_cast<double>(m.pool_discarded));
  t.set_counter("engine/bytes_pooled", static_cast<double>(m.bytes_pooled));
  t.set_counter("engine/buffers_pooled", static_cast<double>(m.buffers_pooled));
  t.set_counter("engine/backends_created",
                static_cast<double>(m.backends_created));
  t.set_counter("engine/latency_p50_ms", m.p50_ms);
  t.set_counter("engine/latency_p95_ms", m.p95_ms);
  t.set_counter("engine/latency_mean_ms", m.mean_ms);
  t.set_counter("engine/slo_breaches", static_cast<double>(m.slo_breaches));
  t.set_counter("engine/snapshots_written",
                static_cast<double>(m.snapshots_written));
  t.set_counter("engine/planner/decisions",
                static_cast<double>(m.planner_decisions));
  t.set_counter("engine/planner/calibrated_decisions",
                static_cast<double>(m.planner_calibrated_decisions));
  t.set_counter("engine/planner/observations",
                static_cast<double>(m.planner_observations));
  t.set_counter("engine/planner/predicted_seconds",
                m.planner_predicted_seconds);
  t.set_counter("engine/planner/observed_seconds", m.planner_observed_seconds);
  for (const auto& [spec, n] : m.planner_chosen) {
    t.set_counter("engine/planner/chosen/" + spec, static_cast<double>(n));
  }
  for (const auto& [key, f] : m.planner_calibration) {
    t.set_counter("engine/planner/calibration/" + key, f);
  }
  // Histogram buckets, one counter per non-empty bucket so the trace JSON
  // carries the full distributions next to the kernel timeline.
  const std::pair<const char*, const prof::Histogram*> hists[] = {
      {"queue_ms", &m.queue_ms},       {"fuse_ms", &m.fuse_ms},
      {"execute_ms", &m.execute_ms},   {"sample_ms", &m.sample_ms},
      {"total_ms", &m.total_ms},       {"fused_gates", &m.fused_gates},
      {"result_bytes", &m.result_bytes},
      {"trajectories_per_batch", &m.trajectories_per_batch}};
  for (const auto& [name, h] : hists) {
    for (std::size_t i = 0; i <= h->num_buckets(); ++i) {
      if (h->bucket_count(i) == 0) continue;
      const std::string le = i < h->num_buckets()
                                 ? strfmt("%g", h->upper_bound(i))
                                 : std::string("inf");
      t.set_counter(strfmt("engine/hist/%s/le_%s", name, le.c_str()),
                    static_cast<double>(h->bucket_count(i)));
    }
  }
}

}  // namespace qhip::engine
