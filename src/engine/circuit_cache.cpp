#include "src/engine/circuit_cache.h"

namespace qhip::engine {

std::size_t FusedCircuitCache::approx_bytes(const FusionResult& r) {
  std::size_t bytes = 0;
  for (const Gate& g : r.circuit.gates) {
    bytes += g.matrix.dim() * g.matrix.dim() * sizeof(cplx64);
    bytes += sizeof(Gate);
  }
  return bytes;
}

std::shared_ptr<const FusionResult> FusedCircuitCache::get_or_fuse(
    const Circuit& circuit, const FusionOptions& opt, bool* hit) {
  const Key key{hash_circuit(circuit), opt};
  {
    std::lock_guard lk(mu_);
    auto it = index_.find(key);
    if (it != index_.end()) {
      // Refresh LRU position.
      lru_.splice(lru_.begin(), lru_, it->second);
      ++stats_.hits;
      if (hit) *hit = true;
      return it->second->fused;
    }
    ++stats_.misses;
  }
  if (hit) *hit = false;

  // Fuse outside the lock: a slow transpile of one circuit must not stall
  // hits on others. Two threads missing on the same key both fuse; the
  // results are identical and the second insert just refreshes the entry.
  auto fused = std::make_shared<const FusionResult>(fuse_circuit(circuit, opt));
  if (capacity_ == 0) return fused;

  std::lock_guard lk(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    return it->second->fused;
  }
  lru_.push_front(Entry{key, fused, approx_bytes(*fused)});
  index_[key] = lru_.begin();
  stats_.approx_bytes += lru_.front().approx_bytes;
  while (lru_.size() > capacity_) {
    const Entry& victim = lru_.back();
    stats_.approx_bytes -= victim.approx_bytes;
    index_.erase(victim.key);
    lru_.pop_back();
    ++stats_.evictions;
  }
  stats_.entries = lru_.size();
  return fused;
}

FusedCacheStats FusedCircuitCache::stats() const {
  std::lock_guard lk(mu_);
  FusedCacheStats s = stats_;
  s.entries = lru_.size();
  return s;
}

void FusedCircuitCache::clear() {
  std::lock_guard lk(mu_);
  lru_.clear();
  index_.clear();
  stats_.entries = 0;
  stats_.approx_bytes = 0;
}

}  // namespace qhip::engine
