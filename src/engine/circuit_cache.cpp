#include "src/engine/circuit_cache.h"

#include "src/base/timer.h"

namespace qhip::engine {

std::size_t FusedCircuitCache::approx_bytes(const FusionResult& r) {
  std::size_t bytes = 0;
  for (const Gate& g : r.circuit.gates) {
    bytes += g.matrix.dim() * g.matrix.dim() * sizeof(cplx64);
    bytes += sizeof(Gate);
  }
  return bytes;
}

template <typename BuildFn>
std::shared_ptr<const FusionResult> FusedCircuitCache::get_or_build(
    const Key& key, BuildFn&& build, bool* hit) {
  {
    std::lock_guard lk(mu_);
    auto it = index_.find(key);
    if (it != index_.end()) {
      // Refresh LRU position.
      lru_.splice(lru_.begin(), lru_, it->second);
      ++stats_.hits;
      if (hit) *hit = true;
      return it->second->fused;
    }
    ++stats_.misses;
  }
  if (hit) *hit = false;

  // Build outside the lock: a slow transpile of one circuit must not stall
  // hits on others. Two threads missing on the same key both build; the
  // results are identical and the second insert just refreshes the entry.
  auto fused = std::make_shared<const FusionResult>(build());
  if (capacity_ == 0) return fused;

  std::lock_guard lk(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    return it->second->fused;
  }
  lru_.push_front(Entry{key, fused, approx_bytes(*fused)});
  index_[key] = lru_.begin();
  stats_.approx_bytes += lru_.front().approx_bytes;
  while (lru_.size() > capacity_) {
    const Entry& victim = lru_.back();
    stats_.approx_bytes -= victim.approx_bytes;
    index_.erase(victim.key);
    lru_.pop_back();
    ++stats_.evictions;
  }
  stats_.entries = lru_.size();
  return fused;
}

std::shared_ptr<const FusionResult> FusedCircuitCache::get_or_fuse(
    const Circuit& circuit, const FusionOptions& opt, bool* hit) {
  return get_or_build(Key{hash_circuit(circuit), opt},
                      [&] { return fuse_circuit(circuit, opt); }, hit);
}

std::shared_ptr<const FusionResult> FusedCircuitCache::get_or_normalize(
    const Circuit& circuit, bool* hit) {
  // {0, 0} is unreachable from fuse_circuit (it requires max_fused_qubits
  // >= 1), so this sub-keyspace is exclusively the normalized forms.
  FusionOptions reserved;
  reserved.max_fused_qubits = 0;
  reserved.window_moments = 0;
  return get_or_build(
      Key{hash_circuit(circuit), reserved},
      [&] {
        Timer t;
        FusionResult r;
        r.circuit = normalize_circuit(circuit);
        r.stats.input_gates = circuit.gates.size();
        r.stats.output_gates = r.circuit.gates.size();
        r.stats.seconds = t.seconds();
        return r;
      },
      hit);
}

FusedCacheStats FusedCircuitCache::stats() const {
  std::lock_guard lk(mu_);
  FusedCacheStats s = stats_;
  s.entries = lru_.size();
  return s;
}

void FusedCircuitCache::clear() {
  std::lock_guard lk(mu_);
  lru_.clear();
  index_.clear();
  stats_.entries = 0;
  stats_.approx_bytes = 0;
}

}  // namespace qhip::engine
