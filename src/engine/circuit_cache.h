// Fused-circuit LRU cache.
//
// Transpiling (gate fusion) is re-done from scratch on every run_circuit
// call; the paper bounds it below 2% of a single run, but a serving layer
// that sees the same circuit thousands of times should pay it once. The
// cache keys on (structural circuit hash, fusion options) and stores the
// complete FusionResult behind a shared_ptr, so concurrent requests can hold
// a hit while the cache evicts and refills around them.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "src/core/circuit.h"
#include "src/fusion/fuser.h"

namespace qhip::engine {

struct FusedCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::size_t entries = 0;
  std::size_t approx_bytes = 0;  // matrix payload of the cached fused circuits

  double hit_rate() const {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / total;
  }
};

class FusedCircuitCache {
 public:
  // `capacity`: max cached entries; 0 disables caching (every call fuses).
  explicit FusedCircuitCache(std::size_t capacity) : capacity_(capacity) {}

  // Returns the fused form of `circuit` under `opt`, fusing on a miss.
  // `hit`, when non-null, reports whether the transpile was skipped.
  std::shared_ptr<const FusionResult> get_or_fuse(const Circuit& circuit,
                                                  const FusionOptions& opt,
                                                  bool* hit = nullptr);

  // Returns the normalize_circuit form of `circuit` (gate boundaries intact —
  // what the trajectory runner needs, where fusion would compose same-qubit
  // neighbours and move the noise-channel insertion points). Cached in the
  // same LRU as fused circuits under the reserved options {0, 0}, which
  // fuse_circuit rejects (max_fused_qubits >= 1), so the key spaces cannot
  // collide. The result is packaged as a FusionResult with input == output
  // gate counts so callers can report it through the existing stats plumbing.
  std::shared_ptr<const FusionResult> get_or_normalize(const Circuit& circuit,
                                                       bool* hit = nullptr);

  FusedCacheStats stats() const;
  void clear();

 private:
  struct Key {
    std::uint64_t circuit_hash;
    FusionOptions fusion;  // the shared fusion-knob struct IS the key part
    friend bool operator==(const Key&, const Key&) = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const {
      // circuit_hash is already well mixed; fold the small params in.
      return static_cast<std::size_t>(
          k.circuit_hash ^ (std::uint64_t{k.fusion.max_fused_qubits} << 32) ^
          k.fusion.window_moments);
    }
  };
  struct Entry {
    Key key;
    std::shared_ptr<const FusionResult> fused;
    std::size_t approx_bytes;
  };

  static std::size_t approx_bytes(const FusionResult& r);

  // Shared lookup/build/insert path; `build` runs outside the lock on a miss.
  template <typename BuildFn>
  std::shared_ptr<const FusionResult> get_or_build(const Key& key,
                                                   BuildFn&& build, bool* hit);

  mutable std::mutex mu_;
  std::size_t capacity_;
  std::list<Entry> lru_;  // front = most recently used
  std::unordered_map<Key, std::list<Entry>::iterator, KeyHash> index_;
  FusedCacheStats stats_;
};

}  // namespace qhip::engine
