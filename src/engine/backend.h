// Runtime backend API: the polymorphic seam between circuits and simulators.
//
// The template simulators (SimulatorCPU<FP>, SimulatorHIP<FP>,
// MultiGcdSimulator<FP>) bind backend and precision at compile time, which
// forced every driver to clone a cpu/hip/multi-gcd dispatch ladder. Backend
// wraps each of them behind one virtual interface selected at runtime from a
// spec string — the same strings the CLIs already use:
//
//   "cpu"     multithreaded host backend
//   "hip"     virtual MI250X GCD (wavefront 64)
//   "a100"    virtual A100 (warp 32)
//   "hip:N"   state distributed over N virtual GCDs (N a power of two >= 2)
//   "dist:N"  state distributed over N thread-ranks on the in-process
//             message-passing communicator (N a power of two >= 2)
//
// The grammar is owned by qhip::BackendSpec (src/core/backend_spec.h); this
// layer only consumes the typed form. "auto" parses as a valid spec but is
// resolved by the engine's cost-model planner, not by create_backend.
//
// A Backend instance is long-lived: it owns its (virtual) device and a
// BufferPool of state vectors keyed by qubit count, so serving many requests
// reuses both the device and the allocations. run() executes an
// already-fused circuit from |0...0> — transpiling is the caller's business
// (the engine caches it; the run_circuit shim does it inline).
//
// Calls to run() on one instance must be serialized by the caller (the
// engine holds a per-instance lock); distinct instances are independent.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/base/deadline.h"
#include "src/base/types.h"
#include "src/core/backend_spec.h"
#include "src/core/circuit.h"
#include "src/engine/buffer_pool.h"
#include "src/obs/observable.h"
#include "src/prof/trace.h"
#include "src/simulator/runner.h"

namespace qhip {

// What a single run should produce beyond executing the circuit.
struct BackendRunSpec {
  std::uint64_t seed = 1;            // measurement + sampling seed
  std::size_t num_samples = 0;       // Born-rule samples of the final state
  std::vector<index_t> amplitude_indices;  // amplitudes to gather (host order)
  bool want_state = false;           // download the full final state
  // Cooperative cancellation: checked between fused-gate applications; on
  // expiry run() aborts with CodedError(kDeadlineExceeded). Default:
  // inactive (never fires).
  Deadline deadline;
  // Request correlation id (DESIGN.md §11): when non-zero, every kernel and
  // memcpy trace event produced by this run carries the id, and backends
  // record a "sample" span on the request's trace row. 0 = untraced.
  std::uint64_t corr = 0;
  // When non-null, evaluate <psi| P |psi> of every Pauli string in the
  // observable over the final state (DESIGN.md §14). GPU backends run the
  // hipsim::expectation device kernel; host backends use the obs:: path.
  // The pointer must stay valid for the duration of run().
  const obs::Observable* observable = nullptr;
};

struct BackendRunOutput {
  std::vector<index_t> measurements;  // in-circuit 'm' gate outcomes
  std::vector<index_t> samples;
  std::vector<cplx64> amplitudes;     // one per requested index
  std::vector<cplx64> state;          // full state iff want_state
  // Wall-clock spent drawing Born-rule samples (0 when none requested);
  // feeds the engine's per-stage sample-latency histogram.
  double sample_seconds = 0;
  // Backend-specific counters ("slot_swaps", "peer_bytes", ... for hip:N).
  std::map<std::string, double> counters;
  // One entry per Pauli string of BackendRunSpec::observable, in order,
  // coefficients included (empty when no observable was requested).
  std::vector<cplx64> expectations;
};

class Backend {
 public:
  virtual ~Backend() = default;

  // The spec string this backend was created from ("cpu", "hip", "hip:4").
  virtual const std::string& spec() const = 0;
  // Typed form of spec() — the planner's capability/score hook (always a
  // runnable kind; create_backend refuses "auto").
  virtual BackendSpec spec_info() const;
  // Human-readable device description for reports.
  virtual const std::string& description() const = 0;
  virtual Precision precision() const = 0;

  // Largest qubit count a request may use before it must be rejected
  // (bounded by the virtual device's global memory for GPU backends).
  virtual unsigned max_qubits() const = 0;

  // Runs `fused` from |0...0> and gathers the requested outputs. The circuit
  // must already be transpiled (or be intentionally unfused). Throws
  // qhip::Error on malformed input and qhip::CodedError for device failures
  // (kOutOfMemory, kBackendFault, kDeadlineExceeded) — GPU backends drain
  // and clear their deferred stream errors before rethrowing, so a failed
  // run leaves the device reusable for a retry. Callers serialize calls per
  // instance.
  virtual BackendRunOutput run(const Circuit& fused, const BackendRunSpec& spec) = 0;

  // State-buffer pool counters (hits/misses/bytes parked).
  virtual engine::PoolStats pool_stats() const = 0;
  // Frees pooled state buffers (e.g. under memory pressure).
  virtual void trim_pool() = 0;
};

// True if `spec` parses as a known backend spec, including "auto"
// (convenience wrapper over BackendSpec::try_parse).
bool is_backend_spec(const std::string& spec);

// --- Planner capability hooks (no backend instance required) ----------------

// Largest qubit count a backend created from `spec` would accept — the same
// formula each Backend subclass's max_qubits() uses, evaluated from the spec
// alone so the planner can score candidates it has not created yet.
// Returns 0 for Kind::kAuto.
unsigned backend_max_qubits(const BackendSpec& spec, Precision p);

// True if an n-qubit request fits `spec`: n <= backend_max_qubits plus the
// distributed floor (dist:N needs n > log2(N) so every rank holds a slice).
bool backend_fits(const BackendSpec& spec, unsigned num_qubits, Precision p);

// True if a backend created from `spec` can run trajectory (noise) workloads.
// The trajectory runner streams Kraus selections over a host state vector,
// so only the cpu backend qualifies today; "auto" filters its candidate list
// with this (DESIGN.md §14). Returns false for Kind::kAuto itself.
bool backend_supports_noise(const BackendSpec& spec);

// Builds a backend from its typed spec. Throws qhip::Error for
// Kind::kAuto — "auto" is resolved by the engine's planner (DESIGN.md §13),
// never instantiated directly. The tracer, when non-null, must outlive the
// backend; kernel and memcpy events land on it exactly as before.
// `fault_spec`, when non-empty, installs a vgpu::FaultPlan (QHIP_FAULT_SPEC
// grammar; see src/vgpu/fault.h) into the backend's virtual device(s) —
// ignored by the cpu backend, which has no device to break.
std::unique_ptr<Backend> create_backend(const BackendSpec& spec, Precision precision,
                                        Tracer* tracer = nullptr,
                                        const std::string& fault_spec = {});

// String-spec convenience: BackendSpec::parse + the overload above.
std::unique_ptr<Backend> create_backend(const std::string& spec, Precision precision,
                                        Tracer* tracer = nullptr,
                                        const std::string& fault_spec = {});

// Convenience for CLIs: accepts "single" | "double". Throws on anything else.
std::unique_ptr<Backend> create_backend(const std::string& spec,
                                        const std::string& precision,
                                        Tracer* tracer = nullptr,
                                        const std::string& fault_spec = {});

// Fuses `circuit` under `opt` and runs it on `backend` — the Backend-level
// equivalent of the legacy template run_circuit (which is now a compat shim
// kept for callers that hold a concrete simulator; see src/simulator/
// runner.h). Sampling and measurement seeds behave identically, so results
// are bit-identical with the template path on the same backend kind. Callers
// needing amplitude gathers or the full state fuse explicitly and call
// Backend::run with a BackendRunSpec.
RunResult run_circuit(Backend& backend, const Circuit& circuit,
                      const RunOptions& opt = {});

}  // namespace qhip
