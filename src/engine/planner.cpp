#include "src/engine/planner.h"

#include <algorithm>
#include <cmath>

#include "src/base/error.h"
#include "src/base/strings.h"
#include "src/engine/backend.h"
#include "src/perfmodel/model.h"

namespace qhip::engine {

namespace {

// One observation outside this band is treated as saturated rather than
// letting a single stall (or a zero-duration timer read) poison the EWMA.
// The band is wide on purpose: the rooflines predict the paper's hardware,
// and an emulated device can legitimately run thousands of times slower —
// the clamp only has to stop absurd ratios, not bound honest ones, or the
// factors rail at the cap and the relative ordering is lost.
constexpr double kMinRatio = 1.0 / 65536.0;
constexpr double kMaxRatio = 65536.0;

std::string bucket_key(const std::string& spec_key, unsigned bucket) {
  return strfmt("%s/q%u", spec_key.c_str(), bucket);
}

std::string fusion_key(const std::string& spec_key, unsigned bucket,
                       unsigned max_fused) {
  return strfmt("%s/q%u/f%u", spec_key.c_str(), bucket, max_fused);
}

}  // namespace

Planner::Planner(PlannerOptions opt) : opt_(std::move(opt)) {
  check(!opt_.candidates.empty(), "planner: candidate allowlist is empty");
  for (const BackendSpec& c : opt_.candidates) {
    check(c.runnable(),
          "planner: candidate '" + c.to_string() + "' is not runnable");
  }
  check(opt_.min_fused >= 1 && opt_.max_fused <= 6 &&
            opt_.min_fused <= opt_.max_fused,
        "planner: fusion sweep must satisfy 1 <= min <= max <= 6");
  check(opt_.alpha > 0 && opt_.alpha <= 1, "planner: alpha must be in (0, 1]");
}

double Planner::raw_predict(const BackendSpec& spec,
                            const perfmodel::WorkloadStats& stats,
                            Precision precision) {
  return perfmodel::predict_seconds(spec, stats, precision);
}

std::pair<double, bool> Planner::factor_locked(const std::string& spec_key,
                                               unsigned bucket,
                                               unsigned max_fused) const {
  // Finest level first: the roofline's launch-vs-flops tradeoff across
  // fusion settings is exactly what host emulation distorts, and a shared
  // per-spec factor scales every fusion candidate equally — it can never
  // REORDER them. A per-max_fused entry can, after one observation.
  auto it = table_.find(fusion_key(spec_key, bucket, max_fused));
  if (it != table_.end() && it->second.samples > 0) {
    return {it->second.value, true};
  }
  it = table_.find(bucket_key(spec_key, bucket));
  if (it != table_.end() && it->second.samples > 0) {
    return {it->second.value, true};
  }
  it = table_.find(spec_key);  // spec-wide fallback
  if (it != table_.end() && it->second.samples > 0) {
    return {it->second.value, true};
  }
  return {1.0, false};
}

PlanChoice Planner::plan(
    unsigned num_qubits, Precision precision,
    const std::vector<unsigned>& windows,
    const std::function<perfmodel::WorkloadStats(const FusionOptions&)>&
        stats_for,
    const std::function<double(const BackendSpec&)>& queued_seconds,
    unsigned engine_cap) {
  check(static_cast<bool>(stats_for), "planner: stats_for is required");

  // Deduplicated window sweep, order-preserving so ties resolve toward the
  // request's own window (listed first by the engine).
  std::vector<unsigned> ws;
  for (unsigned w : windows) {
    if (std::find(ws.begin(), ws.end(), w) == ws.end()) ws.push_back(w);
  }
  if (ws.empty()) ws.push_back(FusionOptions{}.window_moments);

  PlanChoice choice;
  bool have_choice = false;

  // Load and calibration snapshots are read under the lock once; the fusion
  // statistics come from the engine's cache outside it.
  std::unique_lock lk(mu_);
  for (unsigned w : ws) {
    for (unsigned f = opt_.min_fused; f <= opt_.max_fused; ++f) {
      const FusionOptions fo{f, w};
      lk.unlock();
      const perfmodel::WorkloadStats stats = stats_for(fo);
      lk.lock();
      for (const BackendSpec& cand : opt_.candidates) {
        if (!backend_fits(cand, num_qubits, precision)) continue;
        if (engine_cap != 0 && num_qubits > engine_cap) continue;
        PlanCandidate pc;
        pc.backend = cand;
        pc.fusion = fo;
        pc.raw_seconds = raw_predict(cand, stats, precision);
        const auto [factor, learned] =
            factor_locked(cand.to_string(), bucket_of(num_qubits), f);
        pc.calibration = factor;
        pc.predicted_seconds = pc.raw_seconds * factor;
        pc.wait_seconds = queued_seconds ? std::max(0.0, queued_seconds(cand)) : 0.0;
        const bool better =
            !have_choice || pc.total_seconds() < choice.predicted_seconds +
                                                     choice.wait_seconds;
        if (better) {
          choice.backend = pc.backend;
          choice.fusion = pc.fusion;
          choice.raw_seconds = pc.raw_seconds;
          choice.predicted_seconds = pc.predicted_seconds;
          choice.wait_seconds = pc.wait_seconds;
          choice.calibration = pc.calibration;
          have_choice = true;
        }
        choice.considered.push_back(pc);
        (void)learned;
      }
    }
  }
  check(have_choice,
        strfmt("planner: no candidate fits a %u-qubit request", num_qubits));
  choice.candidates_scored = choice.considered.size();

  ++stats_.decisions;
  if (choice.calibration != 1.0) ++stats_.calibrated_decisions;
  ++stats_.chosen[choice.backend.to_string()];
  stats_.predicted_seconds_total += choice.predicted_seconds;
  return choice;
}

void Planner::observe(const BackendSpec& spec, unsigned num_qubits,
                      unsigned max_fused, double predicted_raw,
                      double observed) {
  if (!(predicted_raw > 0) || !(observed > 0)) return;
  const double ratio =
      std::clamp(observed / predicted_raw, kMinRatio, kMaxRatio);
  const std::string spec_key = spec.to_string();
  const unsigned bucket = bucket_of(num_qubits);

  std::lock_guard lk(mu_);
  for (const std::string& key :
       {fusion_key(spec_key, bucket, max_fused), bucket_key(spec_key, bucket),
        spec_key}) {
    Ewma& e = table_[key];
    if (e.samples == 0) {
      e.value = ratio;  // seed with the first observation, no 1.0 inertia
    } else {
      e.value = (1.0 - opt_.alpha) * e.value + opt_.alpha * ratio;
    }
    ++e.samples;
  }
  ++stats_.observations;
  stats_.observed_seconds_total += observed;
}

PlanChoice Planner::rescore(
    const PlanChoice& cached, unsigned num_qubits,
    const std::function<double(const BackendSpec&)>& queued_seconds) {
  check(!cached.considered.empty(), "planner: rescore of an empty plan");
  const unsigned bucket = bucket_of(num_qubits);
  PlanChoice choice;
  choice.candidates_scored = cached.considered.size();
  // Load is per-spec, so resolve each spec's wait once; calibration factors
  // are per-(spec, max_fused) and cheap map lookups. The cached list itself
  // is read-only and not copied into the result — rescore is the per-request
  // hot path for plan-cache hits.
  std::map<std::string, double> waits;
  std::lock_guard lk(mu_);
  bool first = true;
  for (const PlanCandidate& pc : cached.considered) {
    const std::string spec_key = pc.backend.to_string();
    auto [wit, inserted] = waits.try_emplace(spec_key);
    if (inserted) {
      wit->second =
          queued_seconds ? std::max(0.0, queued_seconds(pc.backend)) : 0.0;
    }
    const double factor =
        factor_locked(spec_key, bucket, pc.fusion.max_fused_qubits).first;
    const double predicted = pc.raw_seconds * factor;
    if (first || predicted + wit->second <
                     choice.predicted_seconds + choice.wait_seconds) {
      choice.backend = pc.backend;
      choice.fusion = pc.fusion;
      choice.raw_seconds = pc.raw_seconds;
      choice.predicted_seconds = predicted;
      choice.wait_seconds = wit->second;
      choice.calibration = factor;
      first = false;
    }
  }
  ++stats_.decisions;
  if (choice.calibration != 1.0) ++stats_.calibrated_decisions;
  ++stats_.chosen[choice.backend.to_string()];
  stats_.predicted_seconds_total += choice.predicted_seconds;
  return choice;
}

double Planner::calibration(const BackendSpec& spec, unsigned num_qubits,
                            unsigned max_fused) const {
  std::lock_guard lk(mu_);
  return factor_locked(spec.to_string(), bucket_of(num_qubits), max_fused)
      .first;
}

PlannerStats Planner::stats() const {
  std::lock_guard lk(mu_);
  PlannerStats s = stats_;
  for (const auto& [key, e] : table_) {
    if (key.find('/') == std::string::npos) continue;  // spec-wide fallback
    s.calibration[key] = e.value;
  }
  return s;
}

}  // namespace qhip::engine
