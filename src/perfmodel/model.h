// Calibrated roofline device models for the paper's four backends.
//
// The paper's evaluation hardware (AMD MI250X GCD, Nvidia A100, AMD EPYC
// 7A53 "Trento") is not available here; per DESIGN.md §2 its wall-clock
// numbers are reproduced by an analytic model driven by the *exact* workload
// statistics of the fused circuit:
//
//   t = sum over gates [ launch_overhead
//         + max( bytes / (BW_peak  * eff_bw(backend, q)),
//                flops / (FLOPS_peak * eff_fl(backend, q)) ) ]
//
// Peak numbers come from the paper's Table 1. The per-width efficiency
// tables encode the microarchitectural effects the paper discusses:
//
//  * HIP on MI250X: the L kernel runs 32-thread workgroups on a 64-wide
//    wavefront (half-empty vector units) and the wide-gate kernels suffer
//    register/LDS pressure that the un-tuned port does not mitigate —
//    efficiency falls off for q >= 4, which is why the HIP curve
//    "deteriorates with larger gate fusion numbers" (paper §5).
//  * CUDA on A100: mature, stays efficient through q = 6.
//  * cuQuantum: a few percent ahead of the CUDA backend (paper: < 10%).
//  * CPU (Trento, 128 threads): DRAM-bandwidth-bound; wide gates blow the
//    per-core gather window out of L1/L2, dropping achieved bandwidth.
//
// The calibration targets — GPU 7-9x over CPU, A100-vs-MI250X gap 5% at
// fusion 2 and 44% at fusion 4, DP 1.8-2x SP, optimum at 4 fused qubits —
// are asserted by tests/perfmodel/test_model.cpp and reproduced by the
// figure benches.
#pragma once

#include <array>
#include <optional>
#include <string>

#include "src/base/types.h"
#include "src/core/backend_spec.h"
#include "src/perfmodel/workload.h"

namespace qhip::perfmodel {

enum class Backend { kCpuTrento, kHipMi250x, kCudaA100, kCuQuantumA100 };

constexpr std::array<Backend, 4> kAllBackends = {
    Backend::kCpuTrento, Backend::kHipMi250x, Backend::kCudaA100,
    Backend::kCuQuantumA100};

const char* backend_name(Backend b);

struct BackendModel {
  std::string name;
  double bw_gibps;        // peak memory bandwidth (Table 1)
  double sp_tflops;       // peak single-precision FLOP/s (Table 1)
  double dp_tflops;       // peak double-precision FLOP/s
  double launch_us;       // fixed per-gate dispatch overhead
  // Achieved fraction of peak bandwidth / FLOPs per fused-gate width 1..6.
  std::array<double, 7> eff_bw;
  std::array<double, 7> eff_fl;
};

// The calibrated model for a backend.
const BackendModel& backend_model(Backend b);

// Predicted seconds for one width-q gate pass over a 2^n state.
double gate_seconds(Backend b, unsigned num_qubits, unsigned q, Precision p);

// Predicted seconds for a whole fused circuit's workload.
double predict_seconds(const WorkloadStats& w, Backend b, Precision p);

// --- Runtime-spec bridge (engine planner, DESIGN.md §13) --------------------
//
// Maps the runtime BackendSpec grammar onto the calibrated models so the
// serving engine can score placement candidates without knowing the model
// enum: cpu -> Trento, hip -> MI250X GCD, a100 -> the CUDA A100 model.
// Multi-device specs (hip:N, dist:N) scale the single-device roofline by the
// rank count and add a peer-exchange penalty per gate pass — a deliberately
// coarse prior (the paper does not benchmark them) that the planner's online
// EWMA calibration corrects on the serving host.

// The single-device model behind `spec`, when one exists (nullopt for auto).
std::optional<Backend> model_for_spec(const BackendSpec& spec);

// Predicted wall seconds for running `w` on the backend named by `spec`.
// Throws qhip::Error for BackendSpec::Kind::kAuto — "auto" is a policy, not
// a device, and has no roofline of its own.
double predict_seconds(const BackendSpec& spec, const WorkloadStats& w,
                       Precision p);

// Prints the hardware/software table the model is built from (Table 1).
std::string format_table1();

namespace capacity {

// Largest state-vector qubit count that fits a device's memory, leaving
// `reserve_fraction` for staging buffers (the paper's §1: "limiting in
// practice to 35-36 qubits ... on Terabyte-size memory systems").
unsigned max_qubits(std::size_t mem_bytes, Precision p,
                    double reserve_fraction = 0.0625);

// Convenience for the modeled backends.
unsigned max_qubits(Backend b, Precision p);

}  // namespace capacity
}  // namespace qhip::perfmodel
