#include "src/perfmodel/model.h"

#include <algorithm>
#include <sstream>

#include "src/base/bits.h"
#include "src/base/error.h"

namespace qhip::perfmodel {

const char* backend_name(Backend b) {
  switch (b) {
    case Backend::kCpuTrento: return "CPU (AMD EPYC 7A53 Trento, 128 threads)";
    case Backend::kHipMi250x: return "HIP (AMD MI250X, 1 GCD)";
    case Backend::kCudaA100: return "CUDA (NVIDIA A100)";
    case Backend::kCuQuantumA100: return "cuQuantum (NVIDIA A100)";
  }
  return "?";
}

namespace {

// Calibrated efficiency tables; index = fused gate width (1..6).
// See the header comment for the microarchitectural rationale and
// tests/perfmodel/test_model.cpp for the paper-ratio assertions.

const BackendModel kCpu = {
    "cpu_trento",
    /*bw_gibps=*/190.0,  // 8-channel DDR4-3200 peak 204.8 GB/s
    /*sp_tflops=*/5.6,   // 64 cores x 2.75 GHz x 32 SP FLOP/cycle
    /*dp_tflops=*/2.8,
    /*launch_us=*/1.5,   // per-gate OpenMP fork/join + loop setup
    // Wide gates gather with strides that fall out of L1/L2, collapsing
    // achieved DRAM bandwidth.
    /*eff_bw=*/{0, 0.58, 0.64, 0.62, 0.54, 0.29, 0.195},
    /*eff_fl=*/{0, 0.50, 0.50, 0.50, 0.50, 0.50, 0.50},
};

const BackendModel kHip = {
    "hip_mi250x_gcd",
    /*bw_gibps=*/1638.4,  // Table 1
    /*sp_tflops=*/23.95,  // Table 1
    /*dp_tflops=*/23.95,  // CDNA2 vector FP64 runs at the FP32 rate
    /*launch_us=*/7.0,
    // The un-tuned HIPIFY port: the L kernel's 32-thread workgroups fill
    // only half of each 64-lane wavefront, and the wide-gate kernels hit
    // register/LDS pressure the port does not mitigate — achieved bandwidth
    // collapses as the fused width grows (paper §5: "HIP backend performance
    // deteriorates with larger gate fusion numbers").
    /*eff_bw=*/{0, 0.660, 0.647, 0.464, 0.329, 0.201, 0.114},
    /*eff_fl=*/{0, 0.90, 0.90, 0.90, 0.90, 0.90, 0.90},
};

const BackendModel kCuda = {
    "cuda_a100",
    /*bw_gibps=*/1448.0,  // Table 1
    /*sp_tflops=*/19.5,   // A100 SP vector peak (Table 1 lists the FP64 TC
                          // figure; the kernels use the vector units)
    /*dp_tflops=*/9.7,
    /*launch_us=*/3.0,
    // Mature CUDA backend: near-STREAM efficiency through width 4; the 5-
    // and 6-qubit kernels are bounded by the 48 KiB default shared-memory
    // window and register pressure, but the reduced gate count compensates,
    // so the CUDA curve stays flat instead of deteriorating.
    /*eff_bw=*/{0, 0.74, 0.78, 0.82, 0.86, 0.40, 0.28},
    /*eff_fl=*/{0, 0.90, 0.90, 0.90, 0.90, 0.90, 0.90},
};

const BackendModel kCuQuantum = {
    "custatevec_a100",
    1448.0,
    19.5,
    9.7,
    /*launch_us=*/2.5,
    // cuStateVec's tuned kernels: 7% ahead of the CUDA backend across the
    // board (paper: < 10%, cuQuantum slightly favoured).
    /*eff_bw=*/{0, 0.792, 0.835, 0.877, 0.920, 0.428, 0.300},
    /*eff_fl=*/{0, 0.92, 0.92, 0.92, 0.92, 0.92, 0.92},
};

constexpr double kGiB = 1024.0 * 1024.0 * 1024.0;

}  // namespace

const BackendModel& backend_model(Backend b) {
  switch (b) {
    case Backend::kCpuTrento: return kCpu;
    case Backend::kHipMi250x: return kHip;
    case Backend::kCudaA100: return kCuda;
    case Backend::kCuQuantumA100: return kCuQuantum;
  }
  throw Error("backend_model: bad backend");
}

double gate_seconds(Backend b, unsigned num_qubits, unsigned q, Precision p) {
  check(q >= 1 && q <= 6, "gate_seconds: width out of range");
  const BackendModel& m = backend_model(b);
  const double amps = static_cast<double>(pow2(num_qubits));
  const double bytes = 2.0 * amps * static_cast<double>(amp_bytes(p));
  const double flops = 8.0 * amps * static_cast<double>(pow2(q));
  const double peak_fl =
      (p == Precision::kSingle ? m.sp_tflops : m.dp_tflops) * 1e12;
  const double t_bw = bytes / (m.bw_gibps * kGiB * m.eff_bw[q]);
  const double t_fl = flops / (peak_fl * m.eff_fl[q]);
  return m.launch_us * 1e-6 + std::max(t_bw, t_fl);
}

double predict_seconds(const WorkloadStats& w, Backend b, Precision p) {
  double t = 0;
  for (unsigned q = 1; q <= 6; ++q) {
    const std::size_t n = w.counts[q][0] + w.counts[q][1];
    if (n == 0) continue;
    t += static_cast<double>(n) * gate_seconds(b, w.num_qubits, q, p);
  }
  return t;
}

std::optional<Backend> model_for_spec(const BackendSpec& spec) {
  switch (spec.kind) {
    case BackendSpec::Kind::kCpu: return Backend::kCpuTrento;
    case BackendSpec::Kind::kHip: return Backend::kHipMi250x;
    case BackendSpec::Kind::kA100: return Backend::kCudaA100;
    case BackendSpec::Kind::kMultiGcd: return Backend::kHipMi250x;
    case BackendSpec::Kind::kDist: return Backend::kCpuTrento;
    case BackendSpec::Kind::kAuto: return std::nullopt;
  }
  return std::nullopt;
}

double predict_seconds(const BackendSpec& spec, const WorkloadStats& w,
                       Precision p) {
  const std::optional<Backend> model = model_for_spec(spec);
  check(model.has_value(),
        "predict_seconds: '" + spec.to_string() +
            "' has no device model (auto is a policy, not a device)");
  const double single = predict_seconds(w, *model, p);
  if (spec.ranks <= 1) return single;

  // Multi-device prior: each of the N ranks streams 2^n/N amplitudes per
  // gate pass, so compute scales ~1/N; localizing a non-local target costs a
  // half-slice peer exchange. We charge that exchange on a fraction of gate
  // passes that grows with log2(N) (more global qubits -> more swaps) —
  // crude, but monotone in N and workload size, which is all the planner's
  // online calibration needs as a starting point.
  const double peer_bw =
      (spec.kind == BackendSpec::Kind::kMultiGcd ? 50.0 : 25.0) * kGiB;
  const double d = static_cast<double>(log2_exact(spec.ranks));
  const double state_bytes =
      w.state_amps() * static_cast<double>(amp_bytes(p));
  const double swap_fraction = 0.25 * d / 6.0;  // of gate passes, per rank pair
  const double swap_seconds = static_cast<double>(w.num_gates) *
                              swap_fraction * (state_bytes / 2.0) / peer_bw /
                              static_cast<double>(spec.ranks);
  return single / static_cast<double>(spec.ranks) + swap_seconds;
}

std::string format_table1() {
  std::ostringstream os;
  os << "Table 1: Hardware and software setup (model parameters)\n"
     << "-------------------------------------------------------------\n"
     << "CPU                                  AMD 7A53 Trento\n"
     << "Cores                                64\n"
     << "Clock frequency                      2.75 GHz (base)\n"
     << "Memory                               512 GB DDR4\n"
     << "AMD GPU (# GCD)                      AMD MI250X (2)\n"
     << "Memory per GCD                       128 GB HBM2\n"
     << "Theoretical peak memory BW per GCD   1638.4 GiB/s\n"
     << "Theoretical peak SP FLOPs per GCD    23.95 TFLOP/s\n"
     << "Nvidia GPU                           Nvidia A100\n"
     << "Memory per GPU                       40 GB HBM2\n"
     << "Theoretical peak memory BW per GPU   1448 GiB/s\n"
     << "Theoretical peak SP FLOPs per GPU    10.5 TFLOP/s\n"
     << "qsim (reproduced)                    0.16.3\n"
     << "Precision (default)                  single\n"
     << "-------------------------------------------------------------\n";
  return os.str();
}

namespace capacity {

unsigned max_qubits(std::size_t mem_bytes, Precision p,
                    double reserve_fraction) {
  check(mem_bytes > 0 && reserve_fraction >= 0 && reserve_fraction < 1,
        "capacity::max_qubits: bad arguments");
  const double usable = static_cast<double>(mem_bytes) * (1.0 - reserve_fraction);
  unsigned n = 0;
  while (n < 48 &&
         static_cast<double>(pow2(n + 1)) * static_cast<double>(amp_bytes(p)) <=
             usable) {
    ++n;
  }
  return n;
}

unsigned max_qubits(Backend b, Precision p) {
  switch (b) {
    case Backend::kCpuTrento: return max_qubits(512ull << 30, p);
    case Backend::kHipMi250x: return max_qubits(128ull << 30, p);
    case Backend::kCudaA100:
    case Backend::kCuQuantumA100: return max_qubits(40ull << 30, p);
  }
  throw Error("capacity::max_qubits: bad backend");
}

}  // namespace capacity
}  // namespace qhip::perfmodel
