// Exact per-kernel work statistics for a fused circuit.
//
// A state-vector simulator's cost structure is fully determined by the gate
// list: applying a q-qubit fused gate to an n-qubit state streams all 2^n
// amplitudes through the chip once (read + write) and performs one
// 2^q x 2^q complex matrix-vector product per group of 2^q amplitudes.
// These statistics are computed analytically here — they are what the
// device models consume to predict wall-clock time on the paper's hardware
// (see DESIGN.md §2 for the substitution argument). The same numbers are
// cross-checked against instrumented virtual-GPU runs in the test suite.
#pragma once

#include <array>
#include <cstdint>

#include "src/core/circuit.h"

namespace qhip::perfmodel {

// Aggregated per gate-width and kernel class (H: all targets >= 5, L: any
// target < 5 — the qsim GPU backend's split).
struct WorkloadStats {
  unsigned num_qubits = 0;
  std::size_t num_gates = 0;        // unitary gates (measurements excluded)
  std::size_t num_measurements = 0;
  // counts[q][0] = H-kernel gates of width q, counts[q][1] = L-kernel.
  std::array<std::array<std::size_t, 2>, 7> counts{};

  // Totals for one full pass metric per gate.
  double state_amps() const;          // 2^n
  double flops(unsigned q) const;     // real FLOPs for one width-q gate pass
  double bytes(unsigned q, std::size_t amp_bytes) const;  // HBM traffic

  double total_flops() const;
  double total_bytes(std::size_t amp_bytes) const;
  std::size_t low_gates() const;
  std::size_t high_gates() const;

  static WorkloadStats from_circuit(const Circuit& fused);
};

}  // namespace qhip::perfmodel
