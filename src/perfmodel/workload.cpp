#include "src/perfmodel/workload.h"

#include <algorithm>

#include "src/base/bits.h"
#include "src/base/error.h"

namespace qhip::perfmodel {

double WorkloadStats::state_amps() const {
  return static_cast<double>(pow2(num_qubits));
}

double WorkloadStats::flops(unsigned q) const {
  // Per group of 2^q amplitudes: a 2^q x 2^q complex matrix-vector product
  // = 2^2q complex multiply-adds = 8 * 2^2q real FLOPs. Groups: 2^(n-q).
  // Total: 8 * 2^n * 2^q.
  return 8.0 * state_amps() * static_cast<double>(pow2(q));
}

double WorkloadStats::bytes(unsigned q, std::size_t amp_bytes) const {
  // Each amplitude is read once and written once per gate; the gate matrix
  // itself is negligible (<= 64 KiB) and served from cache/LDS.
  (void)q;
  return 2.0 * state_amps() * static_cast<double>(amp_bytes);
}

double WorkloadStats::total_flops() const {
  double t = 0;
  for (unsigned q = 1; q <= 6; ++q) {
    t += static_cast<double>(counts[q][0] + counts[q][1]) * flops(q);
  }
  return t;
}

double WorkloadStats::total_bytes(std::size_t amp_bytes) const {
  double t = 0;
  for (unsigned q = 1; q <= 6; ++q) {
    t += static_cast<double>(counts[q][0] + counts[q][1]) * bytes(q, amp_bytes);
  }
  return t;
}

std::size_t WorkloadStats::low_gates() const {
  std::size_t t = 0;
  for (unsigned q = 1; q <= 6; ++q) t += counts[q][1];
  return t;
}

std::size_t WorkloadStats::high_gates() const {
  std::size_t t = 0;
  for (unsigned q = 1; q <= 6; ++q) t += counts[q][0];
  return t;
}

WorkloadStats WorkloadStats::from_circuit(const Circuit& fused) {
  WorkloadStats s;
  s.num_qubits = fused.num_qubits;
  for (const auto& g : fused.gates) {
    if (g.is_measurement()) {
      ++s.num_measurements;
      continue;
    }
    const unsigned q = g.num_targets();
    check(q >= 1 && q <= 6, "WorkloadStats: gate width out of range");
    qubit_t lowest = g.qubits[0];
    for (qubit_t t : g.qubits) lowest = std::min(lowest, t);
    const bool low = lowest < 5;  // qsim's H/L split at log2(32)
    ++s.counts[q][low ? 1 : 0];
    ++s.num_gates;
  }
  return s;
}

}  // namespace qhip::perfmodel
