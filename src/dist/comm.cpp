#include "src/dist/comm.h"

#include <cstring>
#include <thread>

#include "src/base/error.h"
#include "src/base/strings.h"

namespace qhip::dist {

class World {
 public:
  explicit World(int num_ranks) : size_(num_ranks), reduce_(num_ranks * 2) {
    check(num_ranks >= 1 && num_ranks <= 64, "World: ranks out of [1, 64]");
    vec_slots_.resize(static_cast<std::size_t>(num_ranks) * 2);
  }

  int size() const { return size_; }

  void send(int src, int dst, int tag, const void* data, std::size_t bytes) {
    check(dst >= 0 && dst < size_, "send: bad destination rank");
    const auto* b = static_cast<const std::byte*>(data);
    std::lock_guard lk(mu_);
    chan_[key(src, dst, tag)].msgs.emplace(b, b + bytes);
    cv_.notify_all();
  }

  // Blocking receive: takes the next ticket on the channel, so it is served
  // after every receive (blocking or non-blocking) posted before it.
  void recv(int src, int dst, int tag, void* data, std::size_t bytes) {
    check(src >= 0 && src < size_, "recv: bad source rank");
    std::unique_lock lk(mu_);
    Channel& ch = chan_[key(src, dst, tag)];
    const std::uint64_t ticket = ch.next_ticket++;
    cv_.wait(lk, [&] { return !ch.msgs.empty() && ch.next_serve == ticket; });
    pop_into(ch, data, bytes);
  }

  // Starts a non-blocking receive. Completes immediately (returns true) only
  // when a message is queued AND no older receive on the channel is still
  // pending — otherwise the returned ticket preserves post order and the
  // receive completes in recv_wait(). Without the ticketing, a later irecv
  // could steal the queue front from an earlier still-pending one,
  // reordering chunked exchanges.
  bool irecv_start(int src, int dst, int tag, void* data, std::size_t bytes,
                   std::uint64_t* ticket) {
    check(src >= 0 && src < size_, "recv: bad source rank");
    std::unique_lock lk(mu_);
    Channel& ch = chan_[key(src, dst, tag)];
    if (ch.next_ticket == ch.next_serve && !ch.msgs.empty()) {
      ++ch.next_ticket;
      pop_into(ch, data, bytes);
      return true;
    }
    *ticket = ch.next_ticket++;
    return false;
  }

  void recv_wait(int src, int dst, int tag, std::uint64_t ticket, void* data,
                 std::size_t bytes) {
    std::unique_lock lk(mu_);
    Channel& ch = chan_[key(src, dst, tag)];
    cv_.wait(lk, [&] { return !ch.msgs.empty() && ch.next_serve == ticket; });
    pop_into(ch, data, bytes);
  }

  std::size_t probe(int src, int dst, int tag) {
    check(src >= 0 && src < size_, "probe: bad source rank");
    std::unique_lock lk(mu_);
    Channel& ch = chan_[key(src, dst, tag)];
    cv_.wait(lk, [&] { return !ch.msgs.empty(); });
    return ch.msgs.front().size();
  }

  void barrier() {
    std::unique_lock lk(mu_);
    const std::uint64_t gen = barrier_gen_;
    if (++barrier_count_ == static_cast<unsigned>(size_)) {
      barrier_count_ = 0;
      ++barrier_gen_;
      cv_.notify_all();
    } else {
      cv_.wait(lk, [&] { return barrier_gen_ != gen; });
    }
  }

  // Phase-alternating contribution slots so back-to-back reductions never
  // race: reduction k uses slots [parity * size, parity * size + size).
  std::vector<double> allgather(int rank, double v) {
    std::size_t base;
    {
      std::lock_guard lk(mu_);
      base = static_cast<std::size_t>(reduce_parity_) * size_;
      reduce_[base + rank] = v;
    }
    barrier();
    std::vector<double> out(size_);
    {
      std::lock_guard lk(mu_);
      for (int r = 0; r < size_; ++r) out[r] = reduce_[base + r];
    }
    barrier();
    {
      std::lock_guard lk(mu_);
      if (rank == 0) reduce_parity_ ^= 1;
    }
    barrier();
    return out;
  }

  // Vector flavour of allgather, same phase-alternating scheme. Returns the
  // rank-indexed contributions so callers can reduce in rank order.
  std::vector<std::vector<double>> allgather_vec(int rank,
                                                 const std::vector<double>& v) {
    std::size_t base;
    {
      std::lock_guard lk(mu_);
      base = static_cast<std::size_t>(vec_parity_) * size_;
      vec_slots_[base + rank] = v;
    }
    barrier();
    std::vector<std::vector<double>> out(size_);
    {
      std::lock_guard lk(mu_);
      for (int r = 0; r < size_; ++r) {
        check(vec_slots_[base + r].size() == v.size(),
              "allreduce: vector length differs across ranks");
        out[r] = vec_slots_[base + r];
      }
    }
    barrier();
    {
      std::lock_guard lk(mu_);
      if (rank == 0) vec_parity_ ^= 1;
    }
    barrier();
    return out;
  }

 private:
  // Per-(src, dst, tag) mailbox: FIFO messages plus receive tickets so
  // receives are served strictly in the order they were posted.
  struct Channel {
    std::queue<std::vector<std::byte>> msgs;
    std::uint64_t next_ticket = 0;  // next receive ticket to hand out
    std::uint64_t next_serve = 0;   // ticket entitled to the queue front
  };

  // Pops the channel front into `data` (caller holds mu_ via the wait).
  // Serving is recorded and waiters woken before the size check so a
  // diagnosed mismatch cannot strand other ranks on a stale ticket.
  void pop_into(Channel& ch, void* data, std::size_t bytes) {
    const std::vector<std::byte> msg = std::move(ch.msgs.front());
    ch.msgs.pop();
    ++ch.next_serve;
    cv_.notify_all();
    check(msg.size() == bytes,
          strfmt("recv: size mismatch (sent %zu B, requested %zu B)",
                 msg.size(), bytes));
    std::memcpy(data, msg.data(), bytes);
  }

  static std::uint64_t key(int src, int dst, int tag) {
    // 20 bits per field; an out-of-range tag would alias another channel's
    // key (tag bit 20 == dst bit 0), so reject it loudly instead.
    check(tag >= 0 && tag <= kMaxTag,
          strfmt("comm: tag %d out of range [0, %d]", tag, kMaxTag));
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src)) << 40) |
           (static_cast<std::uint64_t>(static_cast<std::uint32_t>(dst)) << 20) |
           static_cast<std::uint32_t>(tag);
  }

  int size_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::map<std::uint64_t, Channel> chan_;
  unsigned barrier_count_ = 0;
  std::uint64_t barrier_gen_ = 0;
  std::vector<double> reduce_;
  int reduce_parity_ = 0;
  std::vector<std::vector<double>> vec_slots_;
  int vec_parity_ = 0;
};

int Comm::size() const { return world_->size(); }

void Comm::send(int dst, int tag, const void* data, std::size_t bytes) {
  world_->send(rank_, dst, tag, data, bytes);
}

void Comm::recv(int src, int tag, void* data, std::size_t bytes) {
  world_->recv(src, rank_, tag, data, bytes);
}

std::size_t Comm::probe(int src, int tag) {
  return world_->probe(src, rank_, tag);
}

Comm::Request Comm::isend(int dst, int tag, const void* data,
                          std::size_t bytes) {
  // Eager-buffered: the mailbox owns a copy, so the send is complete.
  world_->send(rank_, dst, tag, data, bytes);
  return Request{};
}

Comm::Request Comm::irecv(int src, int tag, void* data, std::size_t bytes) {
  std::uint64_t ticket = 0;
  if (world_->irecv_start(src, rank_, tag, data, bytes, &ticket)) {
    return Request{};
  }
  Request r;
  r.kind_ = Request::Kind::kRecv;
  r.peer_ = src;
  r.tag_ = tag;
  r.ticket_ = ticket;
  r.data_ = data;
  r.bytes_ = bytes;
  return r;
}

void Comm::wait(Request& r) {
  if (r.kind_ == Request::Kind::kRecv) {
    world_->recv_wait(r.peer_, rank_, r.tag_, r.ticket_, r.data_, r.bytes_);
  }
  r.kind_ = Request::Kind::kNone;
}

void Comm::sendrecv(int peer, int tag, const void* send_buf, void* recv_buf,
                    std::size_t bytes) {
  send(peer, tag, send_buf, bytes);
  recv(peer, tag, recv_buf, bytes);
}

void Comm::barrier() { world_->barrier(); }

double Comm::allreduce_sum(double v) {
  const auto all = world_->allgather(rank_, v);
  double total = 0;
  for (double x : all) total += x;
  return total;
}

cplx64 Comm::allreduce_sum(cplx64 v) {
  return {allreduce_sum(v.real()), allreduce_sum(v.imag())};
}

std::vector<double> Comm::allreduce_sum(const std::vector<double>& v) {
  const auto all = world_->allgather_vec(rank_, v);
  std::vector<double> out(v.size(), 0.0);
  for (int r = 0; r < size(); ++r) {
    for (std::size_t i = 0; i < out.size(); ++i) out[i] += all[r][i];
  }
  return out;
}

std::vector<double> Comm::allgather(double v) {
  return world_->allgather(rank_, v);
}

void run_spmd(int num_ranks, const std::function<void(Comm&)>& body) {
  World world(num_ranks);
  std::vector<std::thread> threads;
  std::mutex err_mu;
  std::exception_ptr first_error;

  for (int r = 0; r < num_ranks; ++r) {
    threads.emplace_back([&world, &body, &err_mu, &first_error, r] {
      Comm comm(&world, r);
      try {
        body(comm);
      } catch (...) {
        std::lock_guard lk(err_mu);
        if (!first_error) first_error = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace qhip::dist
