#include "src/dist/comm.h"

#include <cstring>
#include <thread>

#include "src/base/error.h"
#include "src/base/strings.h"

namespace qhip::dist {

class World {
 public:
  explicit World(int num_ranks) : size_(num_ranks), reduce_(num_ranks * 2) {
    check(num_ranks >= 1 && num_ranks <= 64, "World: ranks out of [1, 64]");
  }

  int size() const { return size_; }

  void send(int src, int dst, int tag, const void* data, std::size_t bytes) {
    check(dst >= 0 && dst < size_, "send: bad destination rank");
    const auto* b = static_cast<const std::byte*>(data);
    std::lock_guard lk(mu_);
    mail_[key(src, dst, tag)].emplace(b, b + bytes);
    cv_.notify_all();
  }

  void recv(int src, int dst, int tag, void* data, std::size_t bytes) {
    check(src >= 0 && src < size_, "recv: bad source rank");
    std::unique_lock lk(mu_);
    auto& q = mail_[key(src, dst, tag)];
    cv_.wait(lk, [&] { return !q.empty(); });
    const std::vector<std::byte> msg = std::move(q.front());
    q.pop();
    check(msg.size() == bytes,
          strfmt("recv: size mismatch (sent %zu B, requested %zu B)",
                 msg.size(), bytes));
    std::memcpy(data, msg.data(), bytes);
  }

  void barrier() {
    std::unique_lock lk(mu_);
    const std::uint64_t gen = barrier_gen_;
    if (++barrier_count_ == static_cast<unsigned>(size_)) {
      barrier_count_ = 0;
      ++barrier_gen_;
      cv_.notify_all();
    } else {
      cv_.wait(lk, [&] { return barrier_gen_ != gen; });
    }
  }

  // Phase-alternating contribution slots so back-to-back reductions never
  // race: reduction k uses slots [parity * size, parity * size + size).
  std::vector<double> allgather(int rank, double v) {
    std::size_t base;
    {
      std::lock_guard lk(mu_);
      base = static_cast<std::size_t>(reduce_parity_) * size_;
      reduce_[base + rank] = v;
    }
    barrier();
    std::vector<double> out(size_);
    {
      std::lock_guard lk(mu_);
      for (int r = 0; r < size_; ++r) out[r] = reduce_[base + r];
    }
    barrier();
    {
      std::lock_guard lk(mu_);
      if (rank == 0) reduce_parity_ ^= 1;
    }
    barrier();
    return out;
  }

 private:
  static std::uint64_t key(int src, int dst, int tag) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src)) << 40) |
           (static_cast<std::uint64_t>(static_cast<std::uint32_t>(dst)) << 20) |
           static_cast<std::uint32_t>(tag);
  }

  int size_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::map<std::uint64_t, std::queue<std::vector<std::byte>>> mail_;
  unsigned barrier_count_ = 0;
  std::uint64_t barrier_gen_ = 0;
  std::vector<double> reduce_;
  int reduce_parity_ = 0;
};

int Comm::size() const { return world_->size(); }

void Comm::send(int dst, int tag, const void* data, std::size_t bytes) {
  world_->send(rank_, dst, tag, data, bytes);
}

void Comm::recv(int src, int tag, void* data, std::size_t bytes) {
  world_->recv(src, rank_, tag, data, bytes);
}

void Comm::sendrecv(int peer, int tag, const void* send_buf, void* recv_buf,
                    std::size_t bytes) {
  send(peer, tag, send_buf, bytes);
  recv(peer, tag, recv_buf, bytes);
}

void Comm::barrier() { world_->barrier(); }

double Comm::allreduce_sum(double v) {
  const auto all = world_->allgather(rank_, v);
  double total = 0;
  for (double x : all) total += x;
  return total;
}

cplx64 Comm::allreduce_sum(cplx64 v) {
  return {allreduce_sum(v.real()), allreduce_sum(v.imag())};
}

std::vector<double> Comm::allgather(double v) {
  return world_->allgather(rank_, v);
}

void run_spmd(int num_ranks, const std::function<void(Comm&)>& body) {
  World world(num_ranks);
  std::vector<std::thread> threads;
  std::mutex err_mu;
  std::exception_ptr first_error;

  for (int r = 0; r < num_ranks; ++r) {
    threads.emplace_back([&world, &body, &err_mu, &first_error, r] {
      Comm comm(&world, r);
      try {
        body(comm);
      } catch (...) {
        std::lock_guard lk(err_mu);
        if (!first_error) first_error = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace qhip::dist
