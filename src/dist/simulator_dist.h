// Distributed state-vector simulator over the message-passing layer — the
// MPI-style distribution scheme of the HPC simulators the paper's
// introduction surveys (Intel-QS, QuEST, Qiskit; De Raedt et al.'s
// original decomposition), run SPMD with one rank per state slice.
//
// Rank r of 2^d holds the 2^(n-d) amplitudes whose top d physical index
// bits equal r. Gates on local slots apply independently per rank with the
// CPU kernels; a gate touching a global slot first swaps that slot with a
// free local one — the textbook qubit-remapping / cache-blocking step
// (qHiPSTER). The logical->physical layout permutation is tracked
// identically on every rank, together with its inverse so slot lookups are
// O(1).
//
// Slot swaps are chunked and double-buffered: while chunk k is in flight,
// chunk k+1 is packed and chunk k-1 unpacked, over persistent staging
// buffers (no per-swap allocation). Eviction slots are chosen by farthest
// next use (Belady) when a gate list is available for lookahead, which
// minimizes total swaps over a fused circuit; one-off apply_gate calls fall
// back to the highest free slot.
//
// The full serving contract is supported: in-circuit measurements (collapse
// via a rank-replicated outcome draw over allreduced probabilities),
// Born-rule sampling and amplitude gather on the logical-order state, and
// cooperative deadline checkpoints voted collectively so every rank aborts
// together instead of deadlocking its partner mid-exchange.
#pragma once

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cmath>
#include <functional>
#include <numeric>
#include <vector>

#include "src/base/bits.h"
#include "src/base/deadline.h"
#include "src/base/error.h"
#include "src/base/rng.h"
#include "src/core/circuit.h"
#include "src/dist/comm.h"
#include "src/obs/observable.h"
#include "src/simulator/apply.h"
#include "src/statespace/statevector.h"

namespace qhip::dist {

struct DistStats {
  std::uint64_t slot_swaps = 0;    // pairwise slot exchanges performed
  std::uint64_t swap_rounds = 0;   // gates whose localization communicated
  std::uint64_t swap_chunks = 0;   // pipeline chunks across all swaps
  std::uint64_t bytes_sent = 0;    // payload bytes shipped to partners
  std::uint64_t pack_ns = 0;       // staging-buffer pack time
  std::uint64_t exchange_ns = 0;   // isend/irecv/wait time
  std::uint64_t unpack_ns = 0;     // staging-buffer unpack time
};

struct DistOptions {
  // Chunked double-buffered swaps (pack k+1 / unpack k-1 while k is in
  // flight). Off = the blocking pack/sendrecv/unpack baseline, kept for
  // A/B benchmarking.
  bool pipelined = true;
  // Amplitudes per pipeline chunk; the swap half-slice is split into
  // ceil(half / chunk_amps) chunks.
  index_t chunk_amps = index_t{1} << 14;
};

template <typename FP>
class SimulatorDist {
 public:
  // Gate-index lookahead for eviction: maps a logical qubit to the index of
  // the next gate that touches it (kNeverUsed when it is not used again).
  using NextUseFn = std::function<std::uint64_t(qubit_t)>;
  static constexpr std::uint64_t kNeverUsed = ~std::uint64_t{0};

  // Every rank constructs its own instance with the same num_qubits.
  SimulatorDist(Comm& comm, unsigned num_qubits,
                ThreadPool& pool = ThreadPool::shared(), DistOptions opt = {})
      : comm_(&comm),
        n_(num_qubits),
        d_(log2_exact(static_cast<index_t>(comm.size()))),
        local_(num_qubits > d_ ? num_qubits - d_ : 1),
        opt_(opt),
        pool_(&pool),
        slice_(local_) {
    check(is_pow2(static_cast<index_t>(comm.size())),
          "SimulatorDist: rank count must be a power of two");
    check(num_qubits > d_, "SimulatorDist: too few qubits to distribute");
    check(opt_.chunk_amps > 0, "SimulatorDist: chunk_amps must be positive");
    layout_.resize(n_);
    slots_.resize(n_);
    set_zero_state();
  }

  unsigned num_qubits() const { return n_; }
  unsigned local_qubits() const { return local_; }
  const DistStats& stats() const { return stats_; }
  const StateVector<FP>& local_slice() const { return slice_; }

  void set_zero_state() {
    std::fill(slice_.data(), slice_.data() + slice_.size(), cplx<FP>{});
    if (comm_->rank() == 0) slice_[0] = cplx<FP>{1};
    std::iota(layout_.begin(), layout_.end(), 0u);
    std::iota(slots_.begin(), slots_.end(), 0u);
  }

  // Reclaims a previously released slice's allocation (buffer pooling).
  // Returns false (and keeps the current slice) on a size mismatch.
  bool adopt_slice(StateVector<FP>&& s) {
    if (s.num_qubits() != local_) return false;
    slice_ = std::move(s);
    set_zero_state();
    return true;
  }
  StateVector<FP> release_slice() { return std::move(slice_); }

  void apply_gate(const Gate& gate) { apply_gate_with(gate, nullptr); }

  // Like apply_gate, but eviction slots for any needed swaps are chosen by
  // farthest next use per `next_use` (run() supplies the circuit lookahead).
  void apply_gate_with(const Gate& gate, const NextUseFn& next_use) {
    Gate g = normalized(gate.controls.empty() ? gate : expand_controls(gate));
    check(!g.is_measurement(),
          "SimulatorDist: measurement gates go through run()/measure()");
    check(g.num_targets() <= local_,
          "SimulatorDist: gate wider than the local qubit count");
    bool moved = false;
    for (qubit_t q : g.qubits) moved |= localize(q, g.qubits, next_use);
    if (moved) ++stats_.swap_rounds;
    // Route each logical target to its physical slot WITHOUT re-normalizing
    // the gate onto slot order: the matrix stays in the logical basis, so
    // the accumulation order (and the result, bit for bit) matches the
    // single-node backends no matter how the layout is permuted.
    std::vector<qubit_t> slots(g.qubits.size());
    for (std::size_t j = 0; j < slots.size(); ++j) slots[j] = slot_of(g.qubits[j]);
    apply_gate_routed_inplace(g, slots, slice_, *pool_);
  }

  // Runs the whole circuit. Measurement gate k draws with Philox stream
  // (seed ^ GOLDEN * k, 0x3ea5) — the same formula as SimulatorCPU, so
  // outcomes agree with the cpu backend for the same seed. The deadline is
  // voted on collectively every few gates: if any rank has expired, every
  // rank throws CodedError(kDeadlineExceeded) at the same checkpoint (a
  // lone local throw would leave its swap partner blocked in recv forever).
  void run(const Circuit& c, std::uint64_t seed = 0,
           std::vector<index_t>* measurements = nullptr,
           const Deadline& deadline = {}) {
    check(c.num_qubits == n_, "SimulatorDist::run: qubit mismatch");

    // Per-qubit use lists (ascending gate index) for Belady eviction.
    // Measurement gates read any layout, so they are not "uses".
    std::vector<std::vector<std::uint32_t>> uses(n_);
    for (std::uint32_t i = 0; i < c.gates.size(); ++i) {
      const Gate& g = c.gates[i];
      if (g.is_measurement()) continue;
      for (qubit_t q : g.qubits) uses[q].push_back(i);
      for (qubit_t q : g.controls) uses[q].push_back(i);
    }
    std::vector<std::size_t> cursor(n_, 0);
    std::uint32_t now = 0;
    const NextUseFn next_use = [&](qubit_t q) -> std::uint64_t {
      auto& cu = cursor[q];
      const auto& u = uses[q];
      while (cu < u.size() && u[cu] < now) ++cu;
      return cu < u.size() ? u[cu] : kNeverUsed;
    };

    std::uint64_t meas_idx = 0;
    unsigned since_vote = 0;
    for (std::uint32_t i = 0; i < c.gates.size(); ++i) {
      now = i;
      if (deadline.active() && ++since_vote >= kDeadlineStride) {
        since_vote = 0;
        vote_deadline(deadline);
      }
      const Gate& g = c.gates[i];
      if (g.is_measurement()) {
        const index_t outcome =
            measure(g.qubits, seed ^ (0x9E3779B97F4A7C15 * ++meas_idx));
        if (measurements) measurements->push_back(outcome);
      } else {
        apply_gate_with(g, next_use);
      }
    }
    if (deadline.active()) vote_deadline(deadline);
  }

  double norm2() {
    return comm_->allreduce_sum(statespace::norm2(slice_, *pool_));
  }

  // Measures `qubits` (bit j of the outcome = qubits[j]), collapses and
  // renormalizes the distributed state. Collective: every rank draws the
  // same outcome from the same allreduced distribution and the same Philox
  // stream, mirroring statespace::measure's draw exactly.
  index_t measure(const std::vector<qubit_t>& qubits, std::uint64_t seed) {
    check(!qubits.empty() && qubits.size() <= 30, "measure: bad qubit list");

    // Outcome bits whose physical slot is global are fixed by the rank id;
    // local slots contribute per amplitude.
    index_t fixed = 0;
    index_t lmask = 0;
    std::vector<std::pair<unsigned, unsigned>> lbits;  // (outcome bit, slot)
    const int rank = comm_->rank();
    for (unsigned j = 0; j < qubits.size(); ++j) {
      const unsigned s = slot_of(qubits[j]);
      if (s >= local_) {
        if ((rank >> (s - local_)) & 1) fixed |= index_t{1} << j;
      } else {
        lbits.emplace_back(j, s);
        lmask |= index_t{1} << s;
      }
    }

    const std::size_t no = std::size_t{1} << qubits.size();
    std::vector<double> probs(no, 0.0);
    for (index_t i = 0; i < slice_.size(); ++i) {
      index_t o = fixed;
      for (const auto& [j, s] : lbits) o |= ((i >> s) & 1) << j;
      probs[o] += std::norm(slice_[i]);
    }
    probs = comm_->allreduce_sum(probs);

    Philox rng(seed, /*stream=*/0x3ea5);
    const double r = rng.uniform();
    double csum = 0;
    index_t outcome = no - 1;
    for (std::size_t o = 0; o < no; ++o) {
      csum += probs[o];
      if (r < csum) {
        outcome = o;
        break;
      }
    }

    // Collapse. A fixed (global-slot) bit mismatch zeroes the whole slice;
    // otherwise only amplitudes whose local bits disagree are zeroed.
    index_t gmask = 0;
    for (unsigned j = 0; j < qubits.size(); ++j) {
      if (slot_of(qubits[j]) >= local_) gmask |= index_t{1} << j;
    }
    if ((outcome & gmask) != fixed) {
      std::fill(slice_.data(), slice_.data() + slice_.size(), cplx<FP>{});
    } else {
      index_t lwant = 0;
      for (const auto& [j, s] : lbits) {
        if ((outcome >> j) & 1) lwant |= index_t{1} << s;
      }
      pool_->parallel_for(slice_.size(), [&](index_t i) {
        if ((i & lmask) != lwant) slice_[i] = cplx<FP>{};
      });
    }

    const double n2 = norm2();
    check(n2 > 0, "measure: zero state");
    const FP inv = static_cast<FP>(1.0 / std::sqrt(n2));
    pool_->parallel_for(slice_.size(), [&](index_t i) { slice_[i] *= inv; });
    return outcome;
  }

  // Amplitudes at logical basis-state indices. Collective; every rank
  // returns the same values (owners contribute, zeros elsewhere, rank-
  // ordered sum — exact, since x + 0.0 == x).
  std::vector<cplx64> amplitudes(const std::vector<index_t>& indices) {
    std::vector<double> flat(indices.size() * 2, 0.0);
    const index_t local_mask = low_mask(local_);
    for (std::size_t k = 0; k < indices.size(); ++k) {
      check(indices[k] < pow2(n_), "amplitudes: index out of range");
      const index_t phys = logical_to_physical(indices[k]);
      if (static_cast<int>(phys >> local_) == comm_->rank()) {
        const cplx<FP> a = slice_[phys & local_mask];
        flat[2 * k] = a.real();
        flat[2 * k + 1] = a.imag();
      }
    }
    flat = comm_->allreduce_sum(flat);
    std::vector<cplx64> out(indices.size());
    for (std::size_t k = 0; k < indices.size(); ++k) {
      out[k] = {flat[2 * k], flat[2 * k + 1]};
    }
    return out;
  }

  // <psi| P |psi> with the distributed state: the string's qubits are
  // localized first (swaps), then each rank reduces its slice.
  cplx64 expectation(const obs::PauliString& p) {
    p.validate(n_);
    // Localize every string qubit; the full set is pinned so localizing one
    // never displaces another back to a global slot.
    std::vector<qubit_t> pinned;
    for (const auto& t : p.terms) pinned.push_back(t.qubit);
    for (const auto& t : p.terms) localize(t.qubit, pinned, nullptr);
    obs::PauliString phys = p;
    for (auto& t : phys.terms) t.qubit = slot_of(t.qubit);
    // Local reduction WITHOUT the coefficient/i^Y factors, which must be
    // applied once globally: compute with unit coefficient, then rescale.
    obs::PauliString unit = phys;
    unit.coefficient = 1.0;
    const cplx64 local = obs::expectation(unit, slice_, *pool_);
    static constexpr cplx64 kIPowInv[4] = {{1, 0}, {0, -1}, {-1, 0}, {0, 1}};
    // obs::expectation already multiplied by i^{#Y}; fold it back out, sum
    // across ranks, then apply the full prefactor once.
    const cplx64 raw = local * kIPowInv[unit.num_y() % 4];
    const cplx64 total = comm_->allreduce_sum(raw);
    static constexpr cplx64 kIPow[4] = {{1, 0}, {0, 1}, {-1, 0}, {0, -1}};
    return p.coefficient * kIPow[p.num_y() % 4] * total;
  }

  cplx64 expectation(const obs::Observable& o) {
    cplx64 total{};
    for (const auto& p : o.strings) total += expectation(p);
    return total;
  }

  // Gathers the full state (logical qubit order) on rank 0; other ranks
  // receive an empty state. All ranks must call.
  StateVector<FP> gather(qubit_t /*unused*/ = 0) {
    if (comm_->rank() != 0) {
      comm_->send(0, kGatherTag, slice_.data(),
                  slice_.size() * sizeof(cplx<FP>));
      comm_->barrier();
      StateVector<FP> empty(1);
      return empty;
    }
    StateVector<FP> out(n_);
    out[0] = cplx<FP>{};
    StateVector<FP> part(local_);
    for (int r = 0; r < comm_->size(); ++r) {
      if (r == 0) {
        std::copy(slice_.data(), slice_.data() + slice_.size(), part.data());
      } else {
        comm_->recv(r, kGatherTag, part.data(), part.size() * sizeof(cplx<FP>));
      }
      const index_t base = static_cast<index_t>(r) << local_;
      for (index_t i = 0; i < part.size(); ++i) {
        out[physical_to_logical(base | i)] = part[i];
      }
    }
    comm_->barrier();
    return out;
  }

 private:
  // Fixed message tags. Swaps reuse one tag: per-(src, dst, tag) FIFO
  // matching already keeps concurrent and successive swaps ordered, and a
  // per-swap incrementing tag overflows the 20-bit tag field after enough
  // swaps (and collided with the gather tag after 8001).
  static constexpr int kSwapTag = 1;
  static constexpr int kGatherTag = 2;
  static constexpr unsigned kDeadlineStride = 16;

  unsigned slot_of(qubit_t logical) const {
    check(logical < n_, "SimulatorDist: logical qubit out of range");
    const unsigned s = slots_[logical];
#ifndef NDEBUG
    assert(layout_[s] == logical && "layout/slots maps diverged");
#endif
    return s;
  }

  index_t physical_to_logical(index_t phys) const {
    index_t logical = 0;
    for (unsigned s = 0; s < n_; ++s) {
      if (phys & (index_t{1} << s)) logical |= index_t{1} << layout_[s];
    }
    return logical;
  }

  index_t logical_to_physical(index_t logical) const {
    index_t phys = 0;
    for (unsigned q = 0; q < n_; ++q) {
      if (logical & (index_t{1} << q)) phys |= index_t{1} << slots_[q];
    }
    return phys;
  }

  void vote_deadline(const Deadline& deadline) {
    const double expired = deadline.expired() ? 1.0 : 0.0;
    if (comm_->allreduce_sum(expired) > 0) {
      throw CodedError(ErrorCode::kDeadlineExceeded,
                       "deadline exceeded in SimulatorDist::run (collective "
                       "checkpoint)");
    }
  }

  // Brings `q` into a local slot if needed. The eviction victim is the free
  // local slot whose holder's next use is farthest away (Belady); without
  // lookahead every holder ties at kNeverUsed and the highest free slot
  // wins, matching the old heuristic. Returns true if a swap happened.
  bool localize(qubit_t q, const std::vector<qubit_t>& pinned,
                const NextUseFn& next_use) {
    const unsigned gslot = slot_of(q);
    if (gslot < local_) return false;
    unsigned best = local_;
    std::uint64_t best_next = 0;
    for (unsigned s = local_; s-- > 0;) {
      const qubit_t holder = layout_[s];
      if (std::find(pinned.begin(), pinned.end(), holder) != pinned.end()) {
        continue;
      }
      const std::uint64_t nu = next_use ? next_use(holder) : kNeverUsed;
      if (best == local_ || nu > best_next) {
        best = s;
        best_next = nu;
        if (nu == kNeverUsed) break;  // cannot do better; highest slot wins
      }
    }
    check(best < local_, "SimulatorDist: no free local slot");
    swap_slots(gslot, best);
    return true;
  }

  // Exchange amp(g=0, l=1) <-> amp(g=1, l=0) with the partner rank. The
  // half-slice is shipped in chunks over persistent double staging buffers:
  // chunk k's receive is posted, k is packed and sent, then chunk k-1
  // (whose buffers are now free) is waited on and unpacked — pack, wire,
  // and unpack overlap across chunks.
  void swap_slots(unsigned gslot, unsigned lslot) {
    using clock = std::chrono::steady_clock;
    const auto ns = [](clock::time_point a, clock::time_point b) {
      return static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(b - a).count());
    };

    const unsigned gbit = gslot - local_;
    const int rank = comm_->rank();
    const int partner = rank ^ (1 << gbit);
    const bool low_side = ((rank >> gbit) & 1) == 0;
    const index_t bit = index_t{1} << lslot;
    // Which local-bit half to ship: the low rank of the pair owns l=0 for
    // both slots after the swap, so it ships its l=1 half and vice versa.
    const index_t keep = low_side ? bit : 0;
    const index_t half = slice_.size() >> 1;

    const auto idx_of = [&](index_t t) {
      return ((t >> lslot) << (lslot + 1)) | (t & (bit - 1)) | keep;
    };

    if (!opt_.pipelined) {
      // Blocking baseline: one monolithic pack / sendrecv / unpack with
      // per-swap staging allocations.
      const auto t0 = clock::now();
      std::vector<cplx<FP>> out(half), in(half);
      for (index_t t = 0; t < half; ++t) out[t] = slice_[idx_of(t)];
      const auto t1 = clock::now();
      comm_->sendrecv(partner, kSwapTag, out.data(), in.data(),
                      half * sizeof(cplx<FP>));
      const auto t2 = clock::now();
      for (index_t t = 0; t < half; ++t) slice_[idx_of(t)] = in[t];
      const auto t3 = clock::now();
      stats_.pack_ns += ns(t0, t1);
      stats_.exchange_ns += ns(t1, t2);
      stats_.unpack_ns += ns(t2, t3);
      ++stats_.swap_chunks;
    } else {
      const index_t chunk = std::min(opt_.chunk_amps, half);
      const index_t nchunks = (half + chunk - 1) / chunk;
      for (auto& b : sbuf_) {
        if (b.size() < static_cast<std::size_t>(chunk)) b.resize(chunk);
      }
      for (auto& b : rbuf_) {
        if (b.size() < static_cast<std::size_t>(chunk)) b.resize(chunk);
      }

      const auto count_of = [&](index_t k) {
        return std::min(chunk, half - k * chunk);
      };
      const auto pack = [&](index_t k, std::vector<cplx<FP>>& buf) {
        const index_t base = k * chunk, cnt = count_of(k);
        for (index_t t = 0; t < cnt; ++t) buf[t] = slice_[idx_of(base + t)];
      };
      const auto unpack = [&](index_t k, const std::vector<cplx<FP>>& buf) {
        const index_t base = k * chunk, cnt = count_of(k);
        for (index_t t = 0; t < cnt; ++t) slice_[idx_of(base + t)] = buf[t];
      };

      Comm::Request rreq[2];
      for (index_t k = 0; k < nchunks; ++k) {
        const std::size_t bytes = count_of(k) * sizeof(cplx<FP>);
        auto t0 = clock::now();
        // rbuf_[k % 2] was last used by chunk k-2, unpacked at iteration
        // k-1, so it is free to receive into; sbuf_[k % 2] likewise (isend
        // is eager-buffered, complete at return).
        rreq[k & 1] = comm_->irecv(partner, kSwapTag, rbuf_[k & 1].data(),
                                   bytes);
        auto t1 = clock::now();
        pack(k, sbuf_[k & 1]);
        auto t2 = clock::now();
        comm_->isend(partner, kSwapTag, sbuf_[k & 1].data(), bytes);
        auto t3 = clock::now();
        stats_.exchange_ns += ns(t0, t1) + ns(t2, t3);
        stats_.pack_ns += ns(t1, t2);
        if (k > 0) {
          t0 = clock::now();
          comm_->wait(rreq[(k - 1) & 1]);
          t1 = clock::now();
          unpack(k - 1, rbuf_[(k - 1) & 1]);
          t2 = clock::now();
          stats_.exchange_ns += ns(t0, t1);
          stats_.unpack_ns += ns(t1, t2);
        }
      }
      const auto t0 = clock::now();
      comm_->wait(rreq[(nchunks - 1) & 1]);
      const auto t1 = clock::now();
      unpack(nchunks - 1, rbuf_[(nchunks - 1) & 1]);
      const auto t2 = clock::now();
      stats_.exchange_ns += ns(t0, t1);
      stats_.unpack_ns += ns(t1, t2);
      stats_.swap_chunks += static_cast<std::uint64_t>(nchunks);
    }

    stats_.bytes_sent += half * sizeof(cplx<FP>);
    ++stats_.slot_swaps;
    std::swap(layout_[gslot], layout_[lslot]);
    slots_[layout_[gslot]] = gslot;
    slots_[layout_[lslot]] = lslot;
#ifndef NDEBUG
    for (unsigned s = 0; s < n_; ++s) {
      assert(slots_[layout_[s]] == s && "layout/slots maps diverged");
    }
#endif
  }

  Comm* comm_;
  unsigned n_;
  unsigned d_;
  unsigned local_;
  DistOptions opt_;
  ThreadPool* pool_;
  StateVector<FP> slice_;
  std::vector<qubit_t> layout_;   // physical slot -> logical qubit
  std::vector<unsigned> slots_;   // logical qubit -> physical slot (inverse)
  std::vector<cplx<FP>> sbuf_[2], rbuf_[2];  // persistent swap staging
  DistStats stats_;
};

}  // namespace qhip::dist
