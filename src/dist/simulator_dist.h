// Distributed state-vector simulator over the message-passing layer — the
// MPI-style distribution scheme of the HPC simulators the paper's
// introduction surveys (Intel-QS, QuEST, Qiskit; De Raedt et al.'s
// original decomposition), run SPMD with one rank per state slice.
//
// Rank r of 2^d holds the 2^(n-d) amplitudes whose top d physical index
// bits equal r. Gates on local slots apply independently per rank with the
// CPU kernels; a gate touching a global slot first swaps that slot with a
// free local one — each rank exchanges the half of its slice with the
// opposite local-bit value against its partner rank (one sendrecv), the
// textbook qubit-remapping / cache-blocking step. The logical->physical
// layout permutation is tracked identically on every rank.
#pragma once

#include <algorithm>
#include <numeric>
#include <vector>

#include "src/base/bits.h"
#include "src/base/error.h"
#include "src/core/circuit.h"
#include "src/dist/comm.h"
#include "src/obs/observable.h"
#include "src/simulator/apply.h"
#include "src/statespace/statevector.h"

namespace qhip::dist {

struct DistStats {
  std::uint64_t slot_swaps = 0;
  std::uint64_t bytes_sent = 0;
};

template <typename FP>
class SimulatorDist {
 public:
  // Every rank constructs its own instance with the same num_qubits.
  SimulatorDist(Comm& comm, unsigned num_qubits,
                ThreadPool& pool = ThreadPool::shared())
      : comm_(&comm),
        n_(num_qubits),
        d_(log2_exact(static_cast<index_t>(comm.size()))),
        local_(num_qubits - d_),
        pool_(&pool),
        slice_(local_) {
    check(is_pow2(static_cast<index_t>(comm.size())),
          "SimulatorDist: rank count must be a power of two");
    check(num_qubits > d_, "SimulatorDist: too few qubits to distribute");
    layout_.resize(n_);
    std::iota(layout_.begin(), layout_.end(), 0u);
    set_zero_state();
  }

  unsigned num_qubits() const { return n_; }
  const DistStats& stats() const { return stats_; }
  const StateVector<FP>& local_slice() const { return slice_; }

  void set_zero_state() {
    std::fill(slice_.data(), slice_.data() + slice_.size(), cplx<FP>{});
    if (comm_->rank() == 0) slice_[0] = cplx<FP>{1};
    std::iota(layout_.begin(), layout_.end(), 0u);
  }

  void apply_gate(const Gate& gate) {
    Gate g = normalized(gate.controls.empty() ? gate : expand_controls(gate));
    check(!g.is_measurement(), "SimulatorDist: no measurement support");
    check(g.num_targets() <= local_,
          "SimulatorDist: gate wider than the local qubit count");
    for (qubit_t q : g.qubits) localize(q, g.qubits);
    Gate phys = g;
    for (auto& q : phys.qubits) q = slot_of(q);
    phys = normalized(phys);
    apply_gate_inplace(phys, slice_, *pool_);
  }

  void run(const Circuit& c) {
    check(c.num_qubits == n_, "SimulatorDist::run: qubit mismatch");
    for (const auto& g : c.gates) apply_gate(g);
  }

  double norm2() { return comm_->allreduce_sum(statespace::norm2(slice_, *pool_)); }

  // <psi| P |psi> with the distributed state: the string's qubits are
  // localized first (swaps), then each rank reduces its slice.
  cplx64 expectation(const obs::PauliString& p) {
    p.validate(n_);
    // Localize every string qubit; the full set is pinned so localizing one
    // never displaces another back to a global slot.
    std::vector<qubit_t> pinned;
    for (const auto& t : p.terms) pinned.push_back(t.qubit);
    for (const auto& t : p.terms) localize(t.qubit, pinned);
    obs::PauliString phys = p;
    for (auto& t : phys.terms) t.qubit = slot_of(t.qubit);
    // Local reduction WITHOUT the coefficient/i^Y factors, which must be
    // applied once globally: compute with unit coefficient, then rescale.
    obs::PauliString unit = phys;
    unit.coefficient = 1.0;
    const cplx64 local = obs::expectation(unit, slice_, *pool_);
    static constexpr cplx64 kIPowInv[4] = {{1, 0}, {0, -1}, {-1, 0}, {0, 1}};
    // obs::expectation already multiplied by i^{#Y}; fold it back out, sum
    // across ranks, then apply the full prefactor once.
    const cplx64 raw = local * kIPowInv[unit.num_y() % 4];
    const cplx64 total = comm_->allreduce_sum(raw);
    static constexpr cplx64 kIPow[4] = {{1, 0}, {0, 1}, {-1, 0}, {0, -1}};
    return p.coefficient * kIPow[p.num_y() % 4] * total;
  }

  cplx64 expectation(const obs::Observable& o) {
    cplx64 total{};
    for (const auto& p : o.strings) total += expectation(p);
    return total;
  }

  // Gathers the full state (logical qubit order) on rank 0; other ranks
  // receive an empty state. All ranks must call.
  StateVector<FP> gather(qubit_t /*unused*/ = 0) {
    if (comm_->rank() != 0) {
      comm_->send(0, kGatherTag, slice_.data(), slice_.size() * sizeof(cplx<FP>));
      comm_->barrier();
      StateVector<FP> empty(1);
      return empty;
    }
    StateVector<FP> out(n_);
    out[0] = cplx<FP>{};
    StateVector<FP> part(local_);
    for (int r = 0; r < comm_->size(); ++r) {
      if (r == 0) {
        std::copy(slice_.data(), slice_.data() + slice_.size(), part.data());
      } else {
        comm_->recv(r, kGatherTag, part.data(), part.size() * sizeof(cplx<FP>));
      }
      const index_t base = static_cast<index_t>(r) << local_;
      for (index_t i = 0; i < part.size(); ++i) {
        out[physical_to_logical(base | i)] = part[i];
      }
    }
    comm_->barrier();
    return out;
  }

 private:
  static constexpr int kGatherTag = 9001;
  static constexpr int kSwapTagBase = 1000;

  unsigned slot_of(qubit_t logical) const {
    for (unsigned s = 0; s < n_; ++s) {
      if (layout_[s] == logical) return s;
    }
    throw Error("SimulatorDist: logical qubit not in layout");
  }

  index_t physical_to_logical(index_t phys) const {
    index_t logical = 0;
    for (unsigned s = 0; s < n_; ++s) {
      if (phys & (index_t{1} << s)) logical |= index_t{1} << layout_[s];
    }
    return logical;
  }

  void localize(qubit_t q, const std::vector<qubit_t>& targets) {
    const unsigned gslot = slot_of(q);
    if (gslot < local_) return;
    unsigned lslot = local_;
    for (unsigned s = local_; s-- > 0;) {
      const qubit_t holder = layout_[s];
      if (std::find(targets.begin(), targets.end(), holder) == targets.end()) {
        lslot = s;
        break;
      }
    }
    check(lslot < local_, "SimulatorDist: no free local slot");
    swap_slots(gslot, lslot);
  }

  // Exchange amp(g=0, l=1) <-> amp(g=1, l=0) with the partner rank.
  void swap_slots(unsigned gslot, unsigned lslot) {
    const unsigned gbit = gslot - local_;
    const int rank = comm_->rank();
    const int partner = rank ^ (1 << gbit);
    const bool low_side = ((rank >> gbit) & 1) == 0;
    const unsigned keep_value = low_side ? 1u : 0u;  // local-bit half to ship

    const index_t half = slice_.size() >> 1;
    const index_t bit = index_t{1} << lslot;
    std::vector<cplx<FP>> out(half), in(half);
    for (index_t t = 0; t < half; ++t) {
      const index_t lo = t & (bit - 1);
      const index_t idx = ((t >> lslot) << (lslot + 1)) | lo |
                          (keep_value ? bit : 0);
      out[t] = slice_[idx];
    }
    comm_->sendrecv(partner, kSwapTagBase + static_cast<int>(stats_.slot_swaps),
                    out.data(), in.data(), half * sizeof(cplx<FP>));
    for (index_t t = 0; t < half; ++t) {
      const index_t lo = t & (bit - 1);
      const index_t idx = ((t >> lslot) << (lslot + 1)) | lo |
                          (keep_value ? bit : 0);
      slice_[idx] = in[t];
    }
    stats_.bytes_sent += half * sizeof(cplx<FP>);
    std::swap(layout_[gslot], layout_[lslot]);
    ++stats_.slot_swaps;
  }

  Comm* comm_;
  unsigned n_;
  unsigned d_;
  unsigned local_;
  ThreadPool* pool_;
  StateVector<FP> slice_;
  std::vector<qubit_t> layout_;
  DistStats stats_;
};

}  // namespace qhip::dist
