// In-process message-passing communicator (MPI-flavoured).
//
// The paper situates qsim among MPI-based HPC simulators (Intel-QS, QuEST,
// Qiskit — §1); this layer provides the message-passing model those
// simulators distribute over, with ranks backed by threads so the
// distributed state-vector algorithms (src/dist/simulator_dist.h) run and
// test on a single host. The API is the usual blocking subset:
// send / recv / sendrecv (tagged, message semantics — one recv matches one
// send of the same (src, tag) in order), barrier, and allreduce.
//
// Determinism: message matching is per (src, dst, tag) FIFO, and the
// collectives are rank-ordered, so SPMD programs behave identically run to
// run regardless of thread scheduling.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <queue>
#include <vector>

#include "src/base/types.h"

namespace qhip::dist {

class World;

// Per-rank communicator handle, valid inside run_spmd's body.
class Comm {
 public:
  int rank() const { return rank_; }
  int size() const;

  // Blocking tagged point-to-point. recv must request exactly the byte
  // count that was sent (mismatch throws — catches protocol bugs).
  void send(int dst, int tag, const void* data, std::size_t bytes);
  void recv(int src, int tag, void* data, std::size_t bytes);

  // Bidirectional exchange with `peer` (deadlock-free: sends are buffered).
  void sendrecv(int peer, int tag, const void* send_buf, void* recv_buf,
                std::size_t bytes);

  template <typename T>
  void send_vec(int dst, int tag, const std::vector<T>& v) {
    send(dst, tag, v.data(), v.size() * sizeof(T));
  }
  template <typename T>
  void recv_vec(int src, int tag, std::vector<T>* v) {
    recv(src, tag, v->data(), v->size() * sizeof(T));
  }

  // Collectives (all ranks must call).
  void barrier();
  double allreduce_sum(double v);
  cplx64 allreduce_sum(cplx64 v);
  // Every rank contributes `v`; all ranks receive the rank-indexed vector.
  std::vector<double> allgather(double v);

 private:
  friend class World;
  friend void run_spmd(int, const std::function<void(Comm&)>&);
  Comm(World* world, int rank) : world_(world), rank_(rank) {}

  World* world_;
  int rank_;
};

// Runs `body(comm)` on `num_ranks` threads, one rank each. Exceptions from
// any rank are rethrown on the caller (first one wins) after all ranks
// finish or abort.
void run_spmd(int num_ranks, const std::function<void(Comm&)>& body);

}  // namespace qhip::dist
