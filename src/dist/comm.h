// In-process message-passing communicator (MPI-flavoured).
//
// The paper situates qsim among MPI-based HPC simulators (Intel-QS, QuEST,
// Qiskit — §1); this layer provides the message-passing model those
// simulators distribute over, with ranks backed by threads so the
// distributed state-vector algorithms (src/dist/simulator_dist.h) run and
// test on a single host. The API is the MPI subset the simulator needs:
// blocking send / recv / sendrecv (tagged, message semantics — one recv
// matches one send of the same (src, tag) in order), the non-blocking
// isend / irecv / wait triple used by the pipelined slot-swap protocol,
// probe, barrier, and allreduce (scalar and vector).
//
// Determinism: message matching is per (src, dst, tag) FIFO, and the
// collectives are rank-ordered, so SPMD programs behave identically run to
// run regardless of thread scheduling.
//
// Tags are validated against kMaxTag: the mailbox key packs (src, dst, tag)
// into 64 bits with 20 bits for the tag, so an unchecked tag >= 2^20 used
// to bleed into the dst field and silently cross-wire two unrelated
// channels (the pre-fix swap protocol's ever-incrementing per-swap tags
// were a slow fuse on exactly this).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <queue>
#include <vector>

#include "src/base/error.h"
#include "src/base/types.h"

namespace qhip::dist {

class World;

// Largest valid message tag: the mailbox key gives tags 20 bits.
inline constexpr int kMaxTag = (1 << 20) - 1;

// Per-rank communicator handle, valid inside run_spmd's body.
class Comm {
 public:
  // Handle for a non-blocking operation; complete it with Comm::wait().
  // Default-constructed (or already-completed) requests wait() as no-ops.
  class Request {
   public:
    Request() = default;
    bool pending() const { return kind_ != Kind::kNone; }

   private:
    friend class Comm;
    enum class Kind { kNone, kRecv };
    Kind kind_ = Kind::kNone;
    int peer_ = 0;
    int tag_ = 0;
    std::uint64_t ticket_ = 0;
    void* data_ = nullptr;
    std::size_t bytes_ = 0;
  };

  int rank() const { return rank_; }
  int size() const;

  // Blocking tagged point-to-point. recv must request exactly the byte
  // count that was sent (mismatch throws — catches protocol bugs).
  void send(int dst, int tag, const void* data, std::size_t bytes);
  void recv(int src, int tag, void* data, std::size_t bytes);

  // Blocks until a message from (src, tag) is queued and returns its byte
  // size without consuming it. Lets receivers size their buffers to the
  // incoming message instead of guessing.
  std::size_t probe(int src, int tag);

  // Non-blocking ops. isend is eager-buffered (the message is copied into
  // the mailbox before returning, like MPI's eager protocol), so the
  // returned request is already complete and `data` is reusable
  // immediately. irecv matches in post order: it completes immediately only
  // when a message is queued and no earlier receive on the same (src, tag)
  // channel is still pending; otherwise it takes a ticket and the receive
  // is performed by wait(). Waits on the same channel must happen in
  // irecv-post order (FIFO matching).
  Request isend(int dst, int tag, const void* data, std::size_t bytes);
  Request irecv(int src, int tag, void* data, std::size_t bytes);
  void wait(Request& r);

  // Bidirectional exchange with `peer` (deadlock-free: sends are buffered).
  void sendrecv(int peer, int tag, const void* send_buf, void* recv_buf,
                std::size_t bytes);

  template <typename T>
  void send_vec(int dst, int tag, const std::vector<T>& v) {
    send(dst, tag, v.data(), v.size() * sizeof(T));
  }
  // Resizes *v to the incoming message (probe + recv), so an unsized vector
  // is valid input. The message must be a whole number of T's.
  template <typename T>
  void recv_vec(int src, int tag, std::vector<T>* v) {
    const std::size_t bytes = probe(src, tag);
    check(bytes % sizeof(T) == 0,
          "recv_vec: message size is not a multiple of the element size");
    v->resize(bytes / sizeof(T));
    recv(src, tag, v->data(), bytes);
  }

  // Collectives (all ranks must call).
  void barrier();
  double allreduce_sum(double v);
  cplx64 allreduce_sum(cplx64 v);
  // Element-wise sum across ranks, accumulated in rank order on every rank
  // (deterministic). All ranks must pass the same length.
  std::vector<double> allreduce_sum(const std::vector<double>& v);
  // Every rank contributes `v`; all ranks receive the rank-indexed vector.
  std::vector<double> allgather(double v);

 private:
  friend class World;
  friend void run_spmd(int, const std::function<void(Comm&)>&);
  Comm(World* world, int rank) : world_(world), rank_(rank) {}

  World* world_;
  int rank_;
};

// Runs `body(comm)` on `num_ranks` threads, one rank each. Exceptions from
// any rank are rethrown on the caller (first one wins) after all ranks
// finish or abort.
void run_spmd(int num_ranks, const std::function<void(Comm&)>& body);

}  // namespace qhip::dist
